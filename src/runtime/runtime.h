/**
 * @file
 * The TQ runtime: dispatcher tier + worker threads (paper Figure 3).
 *
 * Datapath, matching the paper:
 *   client -> submit() -> RX queue -> dispatcher (JSQ+MSQ over the
 *   workers' counter cache lines) -> per-worker dispatch ring -> worker
 *   scheduler (PS quanta via forced multitasking) -> per-worker TX ring
 *   -> drain_responses() at the client.
 *
 * The dispatcher never touches job payloads beyond forwarding (blind
 * scheduling needs no parsing, section 3.2) and never sees responses.
 *
 * Sharded dispatch (DESIGN.md §4g): with `num_dispatchers = N > 1` the
 * datapath gains a front tier. The workers split into N contiguous
 * disjoint subsets (common/shard.h); each subset is owned by one
 * dispatcher shard with its own RX queue, packed JSQ view, RNG and
 * counters, so the per-job dispatch work scales with shard count
 * instead of serializing on one core. submit() steers each request
 * with a rotated approximate JSQ over the shards' advertised load
 * lines (shard_front.h), and an idle shard steals a bounded batch from
 * the most-loaded sibling's RX queue — the queues are MPMC, so a steal
 * is an ordinary atomic claim and every job is popped exactly once.
 * N = 1 (the default) is the paper's single-dispatcher runtime and
 * structurally bypasses all of the above: one shard owning every
 * worker, no load publishing, no front-tier pick, no stealing.
 *
 * Lifecycle (runtime/lifecycle.h; DESIGN.md "Lifecycle & shutdown"):
 * the runtime moves Created -> Running -> Draining -> Stopping ->
 * Stopped. drain() finishes queued and in-flight work within a
 * deadline; stop() is drain() with the configured deadline, after which
 * leftovers are abandoned (counted) and blocked ring pushes drop
 * (counted). Both are idempotent and safe to call from any thread. The
 * last dispatcher shard to exit sets lifecycle dispatcher_done;
 * stealing happens only in Running, so a draining shard's final RX
 * sweep races nothing.
 *
 * On this reproduction's host the threads timeshare cores, so absolute
 * throughput is not meaningful — functional behaviour, preemption and
 * counter semantics are; capacity curves come from tq::sim (DESIGN.md).
 */
#ifndef TQ_RUNTIME_RUNTIME_H
#define TQ_RUNTIME_RUNTIME_H

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/shard.h"
#include "conc/cacheline.h"
#include "conc/mpmc_queue.h"
#include "runtime/config.h"
#include "runtime/dispatch_view.h"
#include "runtime/lifecycle.h"
#include "runtime/quantum.h"
#include "runtime/quantum_controller.h"
#include "runtime/shard_front.h"
#include "runtime/worker.h"
#include "telemetry/telemetry.h"

namespace tq::runtime {

/**
 * One dispatcher shard's always-on counters, alone on one line.
 *
 * `dispatched_total` is bumped per job; before this struct existed the
 * three atomics sat directly next to the LifecycleControl member, so
 * every dispatched job invalidated the lifecycle line all workers poll
 * at every loop boundary — real false sharing on the hottest read path
 * (docs/cache_line_analysis.md). Writer: the owning shard's dispatcher
 * thread (plus the drain()/stop() caller for `abandoned`, strictly
 * after the dispatchers have exited); readers: cold stats accessors.
 */
struct alignas(kCacheLineSize) DispatcherCounters
{
    /** Requests forwarded to workers (per-job increment). */
    std::atomic<uint64_t> dispatched_total{0};

    /** Worker-ring-full spin iterations (backpressure gauge). */
    std::atomic<uint64_t> full_spins{0};

    /** Jobs dropped by overflow policy or left queued at a forced stop. */
    std::atomic<uint64_t> abandoned{0};

    char pad[kCacheLineSize - 3 * sizeof(std::atomic<uint64_t>)];
};

static_assert(sizeof(DispatcherCounters) == kCacheLineSize &&
                  alignof(DispatcherCounters) == kCacheLineSize,
              "dispatcher counters must own exactly one line");

/**
 * One dispatcher shard: its RX queue, worker subset, dispatch-local
 * JSQ state, counters and advertised load line. Each shard is a
 * separate heap allocation (unique_ptr in the Runtime), so two shards'
 * members can never share a cache line regardless of allocator
 * behaviour; within a shard, the padded `counters` and `load_line`
 * members own their lines and everything above them is touched only by
 * the owning dispatcher thread (plus construction).
 *
 * The unsharded runtime is exactly one of these owning every worker.
 */
struct DispatcherShard
{
    DispatcherShard(const RuntimeConfig &cfg, int shard_index)
        : index(shard_index),
          span(shard_span(cfg.num_workers, cfg.num_dispatchers,
                          shard_index)),
          rx(cfg.ring_capacity),
          view(static_cast<size_t>(span.count > 0 ? span.count : 1)),
          readers(static_cast<size_t>(span.count)),
          finished_view(static_cast<size_t>(span.count), 0),
          rng(cfg.seed + static_cast<uint64_t>(shard_index))
    {
    }

    const int index;      ///< shard id in [0, num_dispatchers)
    const ShardSpan span; ///< owned workers [first, first + count)

    /** This shard's request queue. MPMC: many submitters; consumers
     *  are the owning dispatcher, stealing siblings (Running only) and
     *  the final drain sweep (after all threads joined). */
    MpmcQueue<Request> rx;

    /** Dispatcher-local packed JSQ/MSQ view over the owned span
     *  (dispatch_view.h): refreshed from the workers' counter lines
     *  once per RX batch, then bumped incrementally as the batch's
     *  requests are assigned — per-request work inside a batch never
     *  touches a shared cache line. Indices are span-local. */
    DispatchView view;

    /** Dispatcher-private JSQ wrap state; no other thread touches it. */
    std::vector<WorkerStatsReader> readers;
    std::vector<uint64_t> finished_view;

    /** The owned workers' stats lines as one contiguous pointer array
     *  so the per-batch refresh walks pointers, not unique_ptr<Worker>
     *  double indirections. Filled once at construction. */
    std::vector<WorkerStatsLine *> stat_lines;

    /** Randomized policies; seeded cfg.seed + index so shard 0 of an
     *  unsharded runtime reproduces the historical stream exactly. */
    Rng rng;

    /** Owned-span queue-length sum as of the last view refresh
     *  (dispatcher-local; feeds the advertised load and the
     *  am-I-idle steal trigger). */
    uint64_t queue_sum = 0;

    /** Padded per-shard hot counters (own line, see above). */
    DispatcherCounters counters;

    /** Advertised aggregate load for the front tier and steal victim
     *  selection (own line; writer: this shard's dispatcher). */
    ShardLoadLine load_line;
};

/** A running TQ instance. */
class Runtime
{
  public:
    /**
     * @param handler application job body, executed inside task
     *     coroutines with probes armed (must call tq_probe() directly or
     *     through instrumented code to be preemptable).
     */
    Runtime(RuntimeConfig cfg, Handler handler);

    /** Equivalent to stop(). */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Launch dispatcher and worker threads (Created -> Running). */
    void start();

    /**
     * Quiesce then join with the configured deadline: equivalent to
     * drain(config().stop_deadline_sec) with the result ignored.
     * Idempotent and thread-safe.
     */
    void stop();

    /**
     * Graceful shutdown: stop accepting work, finish everything already
     * queued or in flight, then join all threads. If @p deadline_sec
     * elapses first, escalate to a forced stop: queued jobs are
     * abandoned and blocked TX pushes dropped, all of it counted
     * (abandoned_jobs(), dropped_responses()). Idempotent and
     * thread-safe; concurrent callers serialize and agree on the result.
     *
     * @return true when the shutdown was clean (nothing abandoned or
     *     dropped over the runtime's whole life).
     */
    bool drain(double deadline_sec);

    /** Current lifecycle phase. */
    Lifecycle lifecycle() const { return lc_.phase(); }

    /**
     * Submit one request (thread-safe; multiple clients allowed). With
     * more than one dispatcher shard the request is steered by the
     * front-tier JSQ over the shards' advertised load lines, rotated
     * by a submitter-local counter so tied (e.g. idle) shards receive
     * round-robin traffic (common/shard.h pick_min_rotated).
     * @return false when the target RX queue is full or the runtime is
     *     past Running (draining or stopped) — the client should back
     *     off or give up.
     */
    bool submit(const Request &req);

    /**
     * Submit one request directly to dispatcher shard @p shard,
     * bypassing the front-tier pick (affinity override; also how the
     * sharding tests construct deliberately skewed backlogs).
     * Same lifecycle/full semantics as submit().
     */
    bool submit_to_shard(const Request &req, int shard);

    /**
     * Collect available responses from every worker's TX ring into
     * @p out. Single consumer. @return number collected.
     */
    size_t drain_responses(std::vector<Response> &out);

    /**
     * Dispatched-minus-finished per worker. Thread-safe: external
     * callers have their own wrap-tracking stats readers and never touch
     * the dispatchers' JSQ views.
     */
    std::vector<uint64_t> queue_lengths();

    /** Total requests forwarded by the dispatcher tier. */
    uint64_t
    dispatched() const
    {
        uint64_t n = 0;
        for (const auto &sh : shards_)
            n += sh->counters.dispatched_total.load(
                std::memory_order_relaxed);
        return n;
    }

    /** Requests forwarded by dispatcher shard @p shard (includes jobs
     *  it stole from siblings — the forwarding shard counts the job). */
    uint64_t
    dispatched(int shard) const
    {
        return shards_[static_cast<size_t>(shard)]
            ->counters.dispatched_total.load(std::memory_order_relaxed);
    }

    /** Dispatcher shards in this runtime (config().num_dispatchers). */
    int
    num_dispatcher_shards() const
    {
        return static_cast<int>(shards_.size());
    }

    /** Dispatcher shard @p shard owns workers [first, first+count). */
    ShardSpan
    shard_workers(int shard) const
    {
        return shards_[static_cast<size_t>(shard)]->span;
    }

    /** Jobs accepted but never finished: dropped by the dispatcher's
     *  overflow policy, still queued at a forced stop, or admitted to a
     *  worker and abandoned there. */
    uint64_t abandoned_jobs() const;

    /** Responses dropped by the workers' TX overflow policy. */
    uint64_t dropped_responses() const;

    /** Worker TX-ring-full spin iterations (backpressure gauge). */
    uint64_t tx_ring_full_spins() const;

    /** Dispatcher ring-full spin iterations (backpressure gauge). */
    uint64_t
    dispatch_ring_full_spins() const
    {
        uint64_t n = 0;
        for (const auto &sh : shards_)
            n += sh->counters.full_spins.load(std::memory_order_relaxed);
        return n;
    }

    const RuntimeConfig &config() const { return cfg_; }

    /** Direct access for tests and examples. */
    Worker &worker(int i) { return *workers_[static_cast<size_t>(i)]; }

    /**
     * This runtime's telemetry registry (counters, stage histograms,
     * trace rings). Always present; in `-DTQ_TELEMETRY=OFF` builds the
     * hot paths record nothing, so everything reads zero.
     */
    telemetry::MetricsRegistry &metrics() { return *metrics_; }

    /**
     * Snapshot all metrics without stopping the runtime, folding in the
     * wrap-tolerant cumulative quanta read from each worker's stats
     * cache line (WorkerStatsReader::read_total_quanta()) and the
     * backpressure counters (which record in every build).
     *
     * Thread-safe: concurrent snapshots serialize on an internal mutex,
     * and running workers/dispatchers are never disturbed.
     */
    telemetry::MetricsSnapshot telemetry_snapshot();

    /**
     * One tick of the adaptive quantum controller (DESIGN.md §4i),
     * piggybacked on the telemetry snapshot path: digest a snapshot's
     * per-class observations through the blind control law
     * (runtime/quantum_controller.h) and republish the per-class
     * quantum table. Workers resolve budgets at admission, so new
     * quanta reach jobs admitted after this call, never a job
     * mid-service. Call it at snapshot rate (hertz) — it is a low-rate
     * loop by design, never on a data path.
     *
     * @return true when any class budget changed. Always false — the
     *     static fallback — when adaptive_quantum is off, the runtime
     *     is on the fixed-quantum path, or the build is
     *     -DTQ_TELEMETRY=OFF (no observations exist; the table keeps
     *     its configured values).
     */
    bool adapt_quanta();

    /**
     * The quantum currently published for @p job_class, in
     * microseconds: the adapted table value in per-class mode, or
     * config().quantum_us on the fixed path.
     */
    double class_quantum_us(int job_class) const;

    /**
     * Drain every trace ring into @p out, merged and sorted by
     * timestamp (see MetricsRegistry::drain_trace()). Single consumer.
     * @return events appended.
     */
    size_t drain_trace(std::vector<telemetry::TraceEvent> &out);

  private:
    friend struct ::tq::LayoutAudit;

    void dispatcher_main(int shard_index);
    void dispatch_batch(DispatcherShard &sh, Request *reqs, size_t n);
    int pick_shard();
    int pick_worker(DispatcherShard &sh);
    void refresh_dispatch_views(DispatcherShard &sh);
    int pick_worker_from_view(DispatcherShard &sh);
    bool push_request(DispatcherShard &sh, int target, const Request &req);
    void publish_load(DispatcherShard &sh, uint64_t just_pushed);
    size_t steal_into(DispatcherShard &sh, Request *buf, size_t buf_len);

    RuntimeConfig cfg_;
    std::unique_ptr<telemetry::MetricsRegistry> metrics_;

    /** Per-class quantum table (DESIGN.md §4i); null on the fixed path
     *  (empty class_quantum_us, no adaptation, or FCFS). Declared
     *  before workers_: the workers capture the raw pointer. */
    std::unique_ptr<ClassQuantumTable> quantum_table_;
    /** Adaptive control law; constructed only in telemetry builds with
     *  adaptive_quantum set. Guarded by stats_mu_ (snapshot-rate). */
    std::unique_ptr<QuantumController> controller_;

    std::vector<std::unique_ptr<Worker>> workers_;

    /** The dispatcher tier; exactly one entry when unsharded. */
    std::vector<std::unique_ptr<DispatcherShard>> shards_;

    /** Per-worker assigned counts. Writer: the owning shard's
     *  dispatcher; readers: queue_lengths() callers (relaxed — the JSQ
     *  view is approximate by design, paper section 4). Workers are
     *  owned by exactly one shard, so each slot has one writer. */
    std::unique_ptr<std::atomic<uint64_t>[]> assigned_;

    /** External readers' wrap state, guarded by stats_mu_. */
    std::vector<WorkerStatsReader> query_readers_;
    std::vector<WorkerStatsReader> snapshot_readers_;
    std::mutex stats_mu_;

    /** Read-hot by every thread, written almost never; owns its line
     *  (LifecycleControl is alignas(kCacheLineSize)). */
    LifecycleControl lc_;
    std::atomic<int> live_threads_{0};
    /** Dispatcher shards still running; the last one out sets
     *  lc_.dispatcher_done (workers key their drain exit on it). */
    std::atomic<int> dispatchers_live_{0};
    std::vector<std::thread> threads_;

    /** Serializes start/drain/stop; protects started_, threads_,
     *  drained_clean_. */
    std::mutex lifecycle_mu_;
    bool started_ = false;
    bool drained_clean_ = true;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_RUNTIME_H
