/**
 * @file
 * The TQ runtime: dispatcher thread + worker threads (paper Figure 3).
 *
 * Datapath, matching the paper:
 *   client -> submit() -> RX queue -> dispatcher (JSQ+MSQ over the
 *   workers' counter cache lines) -> per-worker dispatch ring -> worker
 *   scheduler (PS quanta via forced multitasking) -> per-worker TX ring
 *   -> drain_responses() at the client.
 *
 * The dispatcher never touches job payloads beyond forwarding (blind
 * scheduling needs no parsing, section 3.2) and never sees responses.
 *
 * Lifecycle (runtime/lifecycle.h; DESIGN.md "Lifecycle & shutdown"):
 * the runtime moves Created -> Running -> Draining -> Stopping ->
 * Stopped. drain() finishes queued and in-flight work within a
 * deadline; stop() is drain() with the configured deadline, after which
 * leftovers are abandoned (counted) and blocked ring pushes drop
 * (counted). Both are idempotent and safe to call from any thread.
 *
 * On this reproduction's host the threads timeshare cores, so absolute
 * throughput is not meaningful — functional behaviour, preemption and
 * counter semantics are; capacity curves come from tq::sim (DESIGN.md).
 */
#ifndef TQ_RUNTIME_RUNTIME_H
#define TQ_RUNTIME_RUNTIME_H

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "conc/cacheline.h"
#include "conc/mpmc_queue.h"
#include "runtime/config.h"
#include "runtime/dispatch_view.h"
#include "runtime/lifecycle.h"
#include "runtime/worker.h"
#include "telemetry/telemetry.h"

namespace tq::runtime {

/**
 * The dispatcher thread's always-on counters, alone on one line.
 *
 * `dispatched_total` is bumped per job; before this struct existed the
 * three atomics sat directly next to the LifecycleControl member, so
 * every dispatched job invalidated the lifecycle line all workers poll
 * at every loop boundary — real false sharing on the hottest read path
 * (docs/cache_line_analysis.md). Writer: the dispatcher thread (plus
 * the drain()/stop() caller for `abandoned`, strictly after the
 * dispatcher has exited); readers: cold stats accessors.
 */
struct alignas(kCacheLineSize) DispatcherCounters
{
    /** Requests forwarded to workers (per-job increment). */
    std::atomic<uint64_t> dispatched_total{0};

    /** Worker-ring-full spin iterations (backpressure gauge). */
    std::atomic<uint64_t> full_spins{0};

    /** Jobs dropped by overflow policy or left queued at a forced stop. */
    std::atomic<uint64_t> abandoned{0};

    char pad[kCacheLineSize - 3 * sizeof(std::atomic<uint64_t>)];
};

static_assert(sizeof(DispatcherCounters) == kCacheLineSize &&
                  alignof(DispatcherCounters) == kCacheLineSize,
              "dispatcher counters must own exactly one line");

/** A running TQ instance. */
class Runtime
{
  public:
    /**
     * @param handler application job body, executed inside task
     *     coroutines with probes armed (must call tq_probe() directly or
     *     through instrumented code to be preemptable).
     */
    Runtime(RuntimeConfig cfg, Handler handler);

    /** Equivalent to stop(). */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Launch dispatcher and worker threads (Created -> Running). */
    void start();

    /**
     * Quiesce then join with the configured deadline: equivalent to
     * drain(config().stop_deadline_sec) with the result ignored.
     * Idempotent and thread-safe.
     */
    void stop();

    /**
     * Graceful shutdown: stop accepting work, finish everything already
     * queued or in flight, then join all threads. If @p deadline_sec
     * elapses first, escalate to a forced stop: queued jobs are
     * abandoned and blocked TX pushes dropped, all of it counted
     * (abandoned_jobs(), dropped_responses()). Idempotent and
     * thread-safe; concurrent callers serialize and agree on the result.
     *
     * @return true when the shutdown was clean (nothing abandoned or
     *     dropped over the runtime's whole life).
     */
    bool drain(double deadline_sec);

    /** Current lifecycle phase. */
    Lifecycle lifecycle() const { return lc_.phase(); }

    /**
     * Submit one request (thread-safe; multiple clients allowed).
     * @return false when the RX queue is full or the runtime is past
     *     Running (draining or stopped) — the client should back off or
     *     give up.
     */
    bool submit(const Request &req);

    /**
     * Collect available responses from every worker's TX ring into
     * @p out. Single consumer. @return number collected.
     */
    size_t drain_responses(std::vector<Response> &out);

    /**
     * Dispatched-minus-finished per worker. Thread-safe: external
     * callers have their own wrap-tracking stats readers and never touch
     * the dispatcher's JSQ view.
     */
    std::vector<uint64_t> queue_lengths();

    /** Total requests forwarded by the dispatcher. */
    uint64_t
    dispatched() const
    {
        return counters_.dispatched_total.load(std::memory_order_relaxed);
    }

    /** Jobs accepted but never finished: dropped by the dispatcher's
     *  overflow policy, still queued at a forced stop, or admitted to a
     *  worker and abandoned there. */
    uint64_t abandoned_jobs() const;

    /** Responses dropped by the workers' TX overflow policy. */
    uint64_t dropped_responses() const;

    /** Worker TX-ring-full spin iterations (backpressure gauge). */
    uint64_t tx_ring_full_spins() const;

    /** Dispatcher ring-full spin iterations (backpressure gauge). */
    uint64_t
    dispatch_ring_full_spins() const
    {
        return counters_.full_spins.load(std::memory_order_relaxed);
    }

    const RuntimeConfig &config() const { return cfg_; }

    /** Direct access for tests and examples. */
    Worker &worker(int i) { return *workers_[static_cast<size_t>(i)]; }

    /**
     * This runtime's telemetry registry (counters, stage histograms,
     * trace rings). Always present; in `-DTQ_TELEMETRY=OFF` builds the
     * hot paths record nothing, so everything reads zero.
     */
    telemetry::MetricsRegistry &metrics() { return *metrics_; }

    /**
     * Snapshot all metrics without stopping the runtime, folding in the
     * wrap-tolerant cumulative quanta read from each worker's stats
     * cache line (WorkerStatsReader::read_total_quanta()) and the
     * backpressure counters (which record in every build).
     *
     * Thread-safe: concurrent snapshots serialize on an internal mutex,
     * and running workers/dispatcher are never disturbed.
     */
    telemetry::MetricsSnapshot telemetry_snapshot();

    /**
     * Drain every trace ring into @p out, merged and sorted by
     * timestamp (see MetricsRegistry::drain_trace()). Single consumer.
     * @return events appended.
     */
    size_t drain_trace(std::vector<telemetry::TraceEvent> &out);

  private:
    friend struct ::tq::LayoutAudit;

    void dispatcher_main();
    int pick_worker();
    void refresh_dispatch_views();
    int pick_worker_from_view();
    bool push_request(int target, const Request &req);

    RuntimeConfig cfg_;
    std::unique_ptr<telemetry::MetricsRegistry> metrics_;
    std::vector<std::unique_ptr<Worker>> workers_;
    MpmcQueue<Request> rx_;
    Rng rng_;

    /** Per-worker assigned counts. Writer: the dispatcher; readers:
     *  queue_lengths() callers (relaxed — the JSQ view is approximate
     *  by design, paper section 4). */
    std::unique_ptr<std::atomic<uint64_t>[]> assigned_;
    /** Dispatcher-private JSQ wrap state; no other thread touches it. */
    std::vector<WorkerStatsReader> readers_;
    std::vector<uint64_t> finished_view_;
    /** The workers' stats lines as one contiguous pointer array so the
     *  per-batch refresh walks pointers, not unique_ptr<Worker> double
     *  indirections. Filled once at construction, dispatcher-read. */
    std::vector<WorkerStatsLine *> stat_lines_;
    /** Dispatcher-local packed JSQ/MSQ view (dispatch_view.h): refreshed
     *  from the workers' counter lines once per RX batch (clamped at 0
     *  against the transient finished>assigned race), then bumped
     *  incrementally as the batch's requests are assigned — per-request
     *  work inside a batch never touches a shared cache line, and the
     *  pick reads one packed line per 16 workers (single-pass scan at
     *  one-line width, SIMD horizontal min above). */
    DispatchView view_;

    /** External readers' wrap state, guarded by stats_mu_. */
    std::vector<WorkerStatsReader> query_readers_;
    std::vector<WorkerStatsReader> snapshot_readers_;
    std::mutex stats_mu_;

    /** Dispatcher-written hot counters; padded so their per-job traffic
     *  never touches the lifecycle line below (see DispatcherCounters). */
    DispatcherCounters counters_;

    /** Read-hot by every thread, written almost never; owns its line
     *  (LifecycleControl is alignas(kCacheLineSize)). */
    LifecycleControl lc_;
    std::atomic<int> live_threads_{0};
    std::vector<std::thread> threads_;

    /** Serializes start/drain/stop; protects started_, threads_,
     *  drained_clean_. */
    std::mutex lifecycle_mu_;
    bool started_ = false;
    bool drained_clean_ = true;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_RUNTIME_H
