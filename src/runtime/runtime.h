/**
 * @file
 * The TQ runtime: dispatcher thread + worker threads (paper Figure 3).
 *
 * Datapath, matching the paper:
 *   client -> submit() -> RX queue -> dispatcher (JSQ+MSQ over the
 *   workers' counter cache lines) -> per-worker dispatch ring -> worker
 *   scheduler (PS quanta via forced multitasking) -> per-worker TX ring
 *   -> drain_responses() at the client.
 *
 * The dispatcher never touches job payloads beyond forwarding (blind
 * scheduling needs no parsing, section 3.2) and never sees responses.
 *
 * On this reproduction's host the threads timeshare cores, so absolute
 * throughput is not meaningful — functional behaviour, preemption and
 * counter semantics are; capacity curves come from tq::sim (DESIGN.md).
 */
#ifndef TQ_RUNTIME_RUNTIME_H
#define TQ_RUNTIME_RUNTIME_H

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "conc/mpmc_queue.h"
#include "runtime/config.h"
#include "runtime/worker.h"
#include "telemetry/telemetry.h"

namespace tq::runtime {

/** A running TQ instance. */
class Runtime
{
  public:
    /**
     * @param handler application job body, executed inside task
     *     coroutines with probes armed (must call tq_probe() directly or
     *     through instrumented code to be preemptable).
     */
    Runtime(RuntimeConfig cfg, Handler handler);

    /** Joins all threads; pending jobs are abandoned. */
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Launch dispatcher and worker threads. */
    void start();

    /** Stop accepting work and join all threads. Idempotent. */
    void stop();

    /**
     * Submit one request (thread-safe; multiple clients allowed).
     * @return false when the RX queue is full (client should back off).
     */
    bool submit(const Request &req);

    /**
     * Collect available responses from every worker's TX ring into
     * @p out. Single consumer. @return number collected.
     */
    size_t drain_responses(std::vector<Response> &out);

    /** Dispatched-minus-finished per worker (dispatcher's JSQ view). */
    std::vector<uint64_t> queue_lengths();

    /** Total requests forwarded by the dispatcher. */
    uint64_t dispatched() const { return dispatched_total_; }

    const RuntimeConfig &config() const { return cfg_; }

    /** Direct access for tests and examples. */
    Worker &worker(int i) { return *workers_[static_cast<size_t>(i)]; }

    /**
     * This runtime's telemetry registry (counters, stage histograms,
     * trace rings). Always present; in `-DTQ_TELEMETRY=OFF` builds the
     * hot paths record nothing, so everything reads zero.
     */
    telemetry::MetricsRegistry &metrics() { return *metrics_; }

    /**
     * Snapshot all metrics without stopping the runtime, folding in the
     * wrap-tolerant cumulative quanta read from each worker's stats
     * cache line (WorkerStatsReader::read_total_quanta()).
     *
     * Call from one thread at a time (the snapshot readers keep
     * per-worker wrap state); concurrent with workers/dispatcher is
     * fine.
     */
    telemetry::MetricsSnapshot telemetry_snapshot();

    /**
     * Drain every trace ring into @p out, merged and sorted by
     * timestamp (see MetricsRegistry::drain_trace()). Single consumer.
     * @return events appended.
     */
    size_t drain_trace(std::vector<telemetry::TraceEvent> &out);

  private:
    void dispatcher_main();
    int pick_worker();

    RuntimeConfig cfg_;
    std::unique_ptr<telemetry::MetricsRegistry> metrics_;
    std::vector<std::unique_ptr<Worker>> workers_;
    MpmcQueue<Request> rx_;
    Rng rng_;

    std::vector<uint64_t> assigned_;
    std::vector<WorkerStatsReader> readers_;
    std::vector<uint64_t> finished_view_;
    /** Snapshot-side stats readers; never shared with the dispatcher's
     *  readers_, whose wrap state the dispatcher thread owns. */
    std::vector<WorkerStatsReader> snapshot_readers_;
    uint64_t dispatched_total_ = 0;

    std::atomic<bool> stop_{false};
    std::vector<std::thread> threads_;
    bool started_ = false;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_RUNTIME_H
