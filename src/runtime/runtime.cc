#include "runtime/runtime.h"

#include "common/check.h"
#include "common/cycles.h"

namespace tq::runtime {

Runtime::Runtime(RuntimeConfig cfg, Handler handler)
    : cfg_(cfg),
      metrics_(std::make_unique<telemetry::MetricsRegistry>(
          cfg.num_workers,
          telemetry::kEnabled ? cfg.telemetry_trace_capacity : 1)),
      rx_(cfg.ring_capacity),
      rng_(cfg.seed),
      assigned_(static_cast<size_t>(cfg.num_workers), 0),
      readers_(static_cast<size_t>(cfg.num_workers)),
      finished_view_(static_cast<size_t>(cfg.num_workers), 0),
      snapshot_readers_(static_cast<size_t>(cfg.num_workers))
{
    TQ_CHECK(cfg_.num_workers > 0);
    for (int w = 0; w < cfg_.num_workers; ++w)
        workers_.push_back(std::make_unique<Worker>(
            w, cfg_, handler, &metrics_->worker(w)));
}

Runtime::~Runtime()
{
    stop();
}

void
Runtime::start()
{
    TQ_CHECK(!started_);
    started_ = true;
    threads_.emplace_back([this] { dispatcher_main(); });
    for (auto &w : workers_)
        threads_.emplace_back([&w, this] { w->run(stop_); });
}

void
Runtime::stop()
{
    if (!started_ || stop_.load())
        return;
    stop_.store(true);
    for (auto &t : threads_)
        t.join();
    threads_.clear();
}

bool
Runtime::submit(const Request &req)
{
    return rx_.push(req);
}

size_t
Runtime::drain_responses(std::vector<Response> &out)
{
    size_t n = 0;
    for (auto &w : workers_) {
        while (auto resp = w->tx_ring().pop()) {
            out.push_back(*resp);
            ++n;
        }
    }
    return n;
}

std::vector<uint64_t>
Runtime::queue_lengths()
{
    std::vector<uint64_t> lens(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w) {
        finished_view_[w] = readers_[w].read_finished(
            workers_[w]->stats_line());
        lens[w] = assigned_[w] - finished_view_[w];
    }
    return lens;
}

int
Runtime::pick_worker()
{
    const int n = cfg_.num_workers;
    switch (cfg_.dispatch) {
      case DispatchPolicy::Random:
        return static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
      case DispatchPolicy::PowerOfTwo: {
        const int a = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
        int b = static_cast<int>(rng_.below(static_cast<uint64_t>(n - 1)));
        if (b >= a)
            ++b;
        const auto len = [&](int i) {
            finished_view_[static_cast<size_t>(i)] =
                readers_[static_cast<size_t>(i)].read_finished(
                    workers_[static_cast<size_t>(i)]->stats_line());
            return assigned_[static_cast<size_t>(i)] -
                   finished_view_[static_cast<size_t>(i)];
        };
        return len(a) <= len(b) ? a : b;
      }
      case DispatchPolicy::JsqRandom:
      case DispatchPolicy::JsqMsq: {
        // Refresh the JSQ view from the workers' counter lines: queue
        // length = assigned - finished (delta-tracked across wraps).
        uint64_t best_len = ~0ULL;
        for (int i = 0; i < n; ++i) {
            finished_view_[static_cast<size_t>(i)] =
                readers_[static_cast<size_t>(i)].read_finished(
                    workers_[static_cast<size_t>(i)]->stats_line());
            const uint64_t len = assigned_[static_cast<size_t>(i)] -
                                 finished_view_[static_cast<size_t>(i)];
            best_len = std::min(best_len, len);
        }
        int best = -1;
        uint32_t best_quanta = 0;
        uint64_t tie_count = 0;
        for (int i = 0; i < n; ++i) {
            const uint64_t len = assigned_[static_cast<size_t>(i)] -
                                 finished_view_[static_cast<size_t>(i)];
            if (len != best_len)
                continue;
            if (cfg_.dispatch == DispatchPolicy::JsqRandom) {
                // Reservoir-style uniform choice among ties.
                if (rng_.below(++tie_count) == 0)
                    best = i;
            } else {
                // MSQ: the tied worker whose current jobs have received
                // the most quanta should finish them soonest (s. 3.2).
                const uint32_t q = WorkerStatsReader::read_current_quanta(
                    workers_[static_cast<size_t>(i)]->stats_line());
                if (best < 0 || q > best_quanta) {
                    best = i;
                    best_quanta = q;
                }
            }
        }
        TQ_CHECK(best >= 0);
        return best;
      }
    }
    TQ_CHECK(false);
    return 0;
}

telemetry::MetricsSnapshot
Runtime::telemetry_snapshot()
{
    telemetry::MetricsSnapshot snap = metrics_->snapshot();
    // Cross-check against the dispatcher/worker stats contract: the
    // shared 32-bit total_quanta counters, read wrap-tolerantly.
    for (size_t w = 0; w < workers_.size(); ++w)
        snap.stats_total_quanta += snapshot_readers_[w].read_total_quanta(
            workers_[w]->stats_line());
    return snap;
}

size_t
Runtime::drain_trace(std::vector<telemetry::TraceEvent> &out)
{
    return metrics_->drain_trace(out);
}

void
Runtime::dispatcher_main()
{
    int empty_polls = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
        auto req = rx_.pop();
        if (!req) {
            if (++empty_polls >= 8) {
                empty_polls = 0;
                std::this_thread::yield();
            } else {
                cpu_relax();
            }
            continue;
        }
        empty_polls = 0;
        req->arrival_cycles = rdcycles();
        const int target = pick_worker();
#if defined(TQ_TELEMETRY_ENABLED)
        // Stamp the handoff *before* the push: once the request is in
        // the ring the worker may already be reading it.
        const Cycles dispatched_at = rdcycles();
        req->dispatch_cycles = dispatched_at;
#endif
        auto &ring = workers_[static_cast<size_t>(target)]->dispatch_ring();
        while (!ring.push(*req)) {
            // Worker ring full: backpressure; wait for drainage.
            if (stop_.load(std::memory_order_relaxed))
                return;
            std::this_thread::yield();
        }
        ++assigned_[static_cast<size_t>(target)];
        ++dispatched_total_;
#if defined(TQ_TELEMETRY_ENABLED)
        telemetry::DispatcherTelemetry &dt = metrics_->dispatcher();
        dt.dispatched.fetch_add(1, std::memory_order_relaxed);
        dt.dispatch_cycles.add(dispatched_at - req->arrival_cycles);
        dt.trace.record(telemetry::EventKind::JobDispatched, req->id,
                        static_cast<uint32_t>(target));
#endif
    }
}

} // namespace tq::runtime
