#include "runtime/runtime.h"

#include <algorithm>

#include "common/check.h"
#include "common/cycles.h"
#include "fault/fault.h"

namespace tq::runtime {

Runtime::Runtime(RuntimeConfig cfg, Handler handler)
    : cfg_(cfg),
      metrics_(std::make_unique<telemetry::MetricsRegistry>(
          cfg.num_workers,
          telemetry::kEnabled ? cfg.telemetry_trace_capacity : 1)),
      rx_(cfg.ring_capacity),
      rng_(cfg.seed),
      assigned_(std::make_unique<std::atomic<uint64_t>[]>(
          static_cast<size_t>(cfg.num_workers))),
      readers_(static_cast<size_t>(cfg.num_workers)),
      finished_view_(static_cast<size_t>(cfg.num_workers), 0),
      view_(static_cast<size_t>(std::max(cfg.num_workers, 1))),
      query_readers_(static_cast<size_t>(cfg.num_workers)),
      snapshot_readers_(static_cast<size_t>(cfg.num_workers))
{
    TQ_CHECK(cfg_.num_workers > 0);
    TQ_CHECK(cfg_.dispatch_batch >= 1);
    for (int w = 0; w < cfg_.num_workers; ++w)
        workers_.push_back(std::make_unique<Worker>(
            w, cfg_, handler, &metrics_->worker(w), &lc_));
    for (auto &w : workers_)
        stat_lines_.push_back(&w->stats_line());
}

Runtime::~Runtime()
{
    stop();
}

void
Runtime::start()
{
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    TQ_CHECK(!started_);
    started_ = true;
    TQ_CHECK(lc_.advance(Lifecycle::Created, Lifecycle::Running));
    live_threads_.store(1 + cfg_.num_workers, std::memory_order_relaxed);
    threads_.emplace_back([this] {
        dispatcher_main();
        live_threads_.fetch_sub(1, std::memory_order_acq_rel);
    });
    for (auto &w : workers_)
        threads_.emplace_back([&w, this] {
            w->run();
            live_threads_.fetch_sub(1, std::memory_order_acq_rel);
        });
}

void
Runtime::stop()
{
    (void)drain(cfg_.stop_deadline_sec);
}

bool
Runtime::drain(double deadline_sec)
{
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (lc_.phase() == Lifecycle::Stopped)
        return drained_clean_; // idempotent: repeat the first outcome
    if (!started_) {
        // Never started: there are no threads to quiesce, but submit()
        // accepts in Created so clients may have pre-queued into RX.
        // Those requests will never be forwarded — count them abandoned
        // instead of letting them vanish from the accounting (the early
        // return here used to report a clean drain while losing them).
        lc_.escalate(Lifecycle::Stopped);
        while (rx_.pop())
            counters_.abandoned.fetch_add(1, std::memory_order_relaxed);
        drained_clean_ =
            abandoned_jobs() == 0 && dropped_responses() == 0;
        return drained_clean_;
    }

    // Running -> Draining: submit() starts rejecting, the dispatcher
    // forwards what is queued and exits, workers finish and exit. (A
    // no-op if a concurrent caller already moved the state forward.)
    lc_.advance(Lifecycle::Running, Lifecycle::Draining);

    const Cycles deadline =
        rdcycles() + ns_to_cycles(deadline_sec * 1e9);
    while (live_threads_.load(std::memory_order_acquire) > 0 &&
           rdcycles() < deadline)
        std::this_thread::yield();

    if (live_threads_.load(std::memory_order_acquire) > 0) {
        // Deadline expired: escalate. Every spin loop in the datapath
        // checks this phase, so the joins below are bounded.
        lc_.escalate(Lifecycle::Stopping);
#if defined(TQ_FAULT_INJECTION_ENABLED)
        // Frozen fault sites model hung threads; the forced stop is the
        // point where the machinery reclaims them, so let them go or
        // the joins below would inherit the hang.
        fault::FaultInjector::instance().release_all();
#endif
    }
    for (auto &t : threads_)
        t.join();
    threads_.clear();
    lc_.escalate(Lifecycle::Stopped);

    // Submissions that raced the Running -> Draining transition can land
    // in RX after the dispatcher's final sweep; they were never
    // forwarded, so count them abandoned.
    while (rx_.pop())
        counters_.abandoned.fetch_add(1, std::memory_order_relaxed);
    // Likewise the dispatcher can push into a worker's ring after that
    // (force-stopped) worker's own final sweep; every thread is joined
    // now, so a second sweep is safe and closes the accounting.
    for (auto &w : workers_)
        w->abandon_remaining();

    drained_clean_ = abandoned_jobs() == 0 && dropped_responses() == 0;
    return drained_clean_;
}

bool
Runtime::submit(const Request &req)
{
    // Created is accepted so clients may pre-queue before start().
    if (lc_.phase() > Lifecycle::Running)
        return false;
    return rx_.push(req);
}

size_t
Runtime::drain_responses(std::vector<Response> &out)
{
    // Probe occupancy first so one reserve covers the burst: under a
    // drain storm the collector used to reallocate log2(n) times while
    // popping one response at a time. The probe is racy-low (workers
    // keep pushing), so pop_n keeps collecting past it until a ring
    // reads empty.
    size_t expected = out.size();
    for (const auto &w : workers_)
        expected += w->tx_ring().size();
    out.reserve(expected);

    const size_t before = out.size();
    for (auto &w : workers_) {
        auto &ring = w->tx_ring();
        for (;;) {
            const size_t old = out.size();
            const size_t want = std::max<size_t>(ring.size(), 1);
            out.resize(old + want);
            const size_t got = ring.pop_n(&out[old], want);
            out.resize(old + got);
            if (got < want)
                break; // ring drained (or a partial final batch)
        }
    }
    return out.size() - before;
}

uint64_t
Runtime::abandoned_jobs() const
{
    uint64_t n = counters_.abandoned.load(std::memory_order_relaxed);
    for (const auto &w : workers_)
        n += w->abandoned_jobs();
    return n;
}

uint64_t
Runtime::dropped_responses() const
{
    uint64_t n = 0;
    for (const auto &w : workers_)
        n += w->dropped_responses();
    return n;
}

uint64_t
Runtime::tx_ring_full_spins() const
{
    uint64_t n = 0;
    for (const auto &w : workers_)
        n += w->tx_full_spins();
    return n;
}

std::vector<uint64_t>
Runtime::queue_lengths()
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    std::vector<uint64_t> lens(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w) {
        const uint64_t fin =
            query_readers_[w].read_finished(workers_[w]->stats_line());
        const uint64_t asn = assigned_[w].load(std::memory_order_relaxed);
        // assigned_ is bumped *after* the ring push, so a fast worker can
        // transiently put finished ahead of assigned; clamp instead of
        // wrapping to 2^64.
        lens[w] = asn > fin ? asn - fin : 0;
    }
    return lens;
}

int
Runtime::pick_worker()
{
    const int n = cfg_.num_workers;
    switch (cfg_.dispatch) {
      case DispatchPolicy::Random:
        return static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
      case DispatchPolicy::PowerOfTwo: {
        if (n == 1)
            return 0; // no second worker to sample; degrade gracefully
        const int a = static_cast<int>(rng_.below(static_cast<uint64_t>(n)));
        int b = static_cast<int>(rng_.below(static_cast<uint64_t>(n - 1)));
        if (b >= a)
            ++b;
        const auto len = [&](int i) {
            finished_view_[static_cast<size_t>(i)] =
                readers_[static_cast<size_t>(i)].read_finished(
                    workers_[static_cast<size_t>(i)]->stats_line());
            const uint64_t asn = assigned_[static_cast<size_t>(i)].load(
                std::memory_order_relaxed);
            const uint64_t fin = finished_view_[static_cast<size_t>(i)];
            // assigned_ is bumped *after* the ring push, so a fast
            // worker can transiently put finished ahead of assigned;
            // clamp so it is not mis-ranked as infinitely loaded.
            return asn > fin ? asn - fin : 0;
        };
        return len(a) <= len(b) ? a : b;
      }
      case DispatchPolicy::JsqRandom:
      case DispatchPolicy::JsqMsq:
        refresh_dispatch_views();
        return pick_worker_from_view();
    }
    TQ_CHECK(false);
    return 0;
}

void
Runtime::refresh_dispatch_views()
{
    // Refresh the JSQ view from the workers' counter lines: queue
    // length = assigned - finished (delta-tracked across wraps, clamped
    // at 0 against the transient finished>assigned race noted above).
    // This is the only place the dispatcher touches shared cache lines
    // for load balancing; everything downstream works on the packed
    // view_ until the next batch boundary. stat_lines_ keeps the walk
    // over the workers' lines pointer-chase-free.
    const size_t n = static_cast<size_t>(cfg_.num_workers);
    for (size_t i = 0; i < n; ++i) {
        finished_view_[i] = readers_[i].read_finished(*stat_lines_[i]);
        const uint64_t asn = assigned_[i].load(std::memory_order_relaxed);
        view_.set_len(i,
                      asn > finished_view_[i] ? asn - finished_view_[i] : 0);
        if (cfg_.dispatch == DispatchPolicy::JsqMsq)
            view_.set_quanta(
                i, WorkerStatsReader::read_current_quanta(*stat_lines_[i]));
    }
}

int
Runtime::pick_worker_from_view()
{
    // JSQ over the packed local view (dispatch_view.h), with the
    // policy's tie-break. With a batch size of 1 (a refresh before
    // every call) this is exactly the unbatched policy; inside a batch,
    // ties use the boundary snapshot of current_quanta and queue
    // lengths grow with each assignment.
    const int best = cfg_.dispatch == DispatchPolicy::JsqRandom
                         ? view_.pick_jsq_random(rng_)
                         : view_.pick_jsq_msq();
    TQ_CHECK(best >= 0);
    view_.bump_len(static_cast<size_t>(best));
    return best;
}

telemetry::MetricsSnapshot
Runtime::telemetry_snapshot()
{
    telemetry::MetricsSnapshot snap = metrics_->snapshot();
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        // Cross-check against the dispatcher/worker stats contract: the
        // shared 32-bit total_quanta counters, read wrap-tolerantly.
        for (size_t w = 0; w < workers_.size(); ++w)
            snap.stats_total_quanta +=
                snapshot_readers_[w].read_total_quanta(
                    workers_[w]->stats_line());
    }
    // Backpressure/lifecycle counters record in every build (cold paths
    // only), so fold them in even when TQ_TELEMETRY is off.
    snap.tx_ring_full_spins = tx_ring_full_spins();
    snap.dispatch_ring_full_spins = dispatch_ring_full_spins();
    snap.dropped_responses = dropped_responses();
    snap.abandoned_jobs = abandoned_jobs();
    return snap;
}

size_t
Runtime::drain_trace(std::vector<telemetry::TraceEvent> &out)
{
    return metrics_->drain_trace(out);
}

bool
Runtime::push_request(int target, const Request &req)
{
    TQ_FAULT_SITE(DispatcherPush);
    auto &ring = workers_[static_cast<size_t>(target)]->dispatch_ring();
    // Worker ring full: bounded backpressure — spin with a stop check,
    // then a counted drop — mirroring the worker's TX policy.
    const size_t limit = cfg_.push_spin_limit;
    size_t spins = 0;
    while (!ring.push(req)) {
        if (lc_.force_stop() || (limit != 0 && spins >= limit)) {
            counters_.abandoned.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        ++spins;
        counters_.full_spins.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
    }
    return true;
}

void
Runtime::dispatcher_main()
{
    // RX is popped in batches: one batch dequeue (one contended RMW on
    // the MPMC cursor), one JSQ view refresh (one pass over the shared
    // counter lines), then per-request work against local state only.
    // Under light load batches degenerate to size 1 and the path is the
    // classic per-request one; under pressure the shared-line traffic
    // is divided by the batch occupancy (DESIGN.md "Batched hot path").
    const bool jsq_policy = cfg_.dispatch == DispatchPolicy::JsqMsq ||
                            cfg_.dispatch == DispatchPolicy::JsqRandom;
    std::vector<Request> batch(cfg_.dispatch_batch);
    int empty_polls = 0;
    for (;;) {
        TQ_FAULT_SITE(DispatcherPoll);
        const Lifecycle phase = lc_.phase();
        if (phase >= Lifecycle::Stopping)
            break;
        const size_t n = rx_.pop_n(batch.data(), batch.size());
        if (n == 0) {
            if (phase == Lifecycle::Draining)
                break; // everything queued has been forwarded
            if (++empty_polls >= 8) {
                empty_polls = 0;
                std::this_thread::yield();
            } else {
                cpu_relax();
            }
            continue;
        }
        empty_polls = 0;
        // One arrival stamp covers the batch: the requests were all in
        // RX when the batch was claimed, and per-request RDTSC is
        // exactly the kind of per-job cost batching amortizes away.
        const Cycles arrived_at = rdcycles();
        if (jsq_policy)
            refresh_dispatch_views();
        for (size_t i = 0; i < n; ++i) {
            Request &req = batch[i];
            req.arrival_cycles = arrived_at;
            // Scatter-gather expansion: a request with fanout k becomes
            // k shard pushes, each placed by its own policy pick (JSQ's
            // incremental bump_len spreads the shards naturally). The
            // degenerate k=1 loop is exactly the classic per-request
            // path. Per-shard counters: dispatched_total/assigned_ move
            // in worker-job units everywhere downstream.
            const uint32_t fanout = req.fanout == 0 ? 1 : req.fanout;
            for (uint32_t s = 0; s < fanout; ++s) {
                req.shard = s;
                const int target =
                    jsq_policy ? pick_worker_from_view() : pick_worker();
#if defined(TQ_TELEMETRY_ENABLED)
                // Stamp the handoff *before* the push: once the request
                // is in the ring the worker may already be reading it.
                const Cycles dispatched_at = rdcycles();
                req.dispatch_cycles = dispatched_at;
#endif
                if (!push_request(target, req))
                    continue; // dropped (counted); the outer loop
                              // re-checks the phase per batch
                assigned_[static_cast<size_t>(target)].fetch_add(
                    1, std::memory_order_relaxed);
                counters_.dispatched_total.fetch_add(
                    1, std::memory_order_relaxed);
#if defined(TQ_TELEMETRY_ENABLED)
                telemetry::DispatcherTelemetry &dt =
                    metrics_->dispatcher();
                dt.dispatched.fetch_add(1, std::memory_order_relaxed);
                dt.dispatch_cycles.add(dispatched_at -
                                       req.arrival_cycles);
                dt.trace.record(telemetry::EventKind::JobDispatched,
                                req.id, static_cast<uint32_t>(target));
#endif
            }
        }
#if defined(TQ_TELEMETRY_ENABLED)
        metrics_->dispatcher().batch_occupancy.add(n);
#endif
    }
    // Force-stopped with requests still queued: they will never be
    // forwarded — count them abandoned before announcing completion.
    while (rx_.pop())
        counters_.abandoned.fetch_add(1, std::memory_order_relaxed);
    lc_.dispatcher_done.store(true, std::memory_order_release);
}

} // namespace tq::runtime
