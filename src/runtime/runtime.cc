#include "runtime/runtime.h"

#include <algorithm>

#include "common/check.h"
#include "common/cycles.h"
#include "fault/fault.h"
#include "telemetry/events.h"

namespace tq::runtime {

Runtime::Runtime(RuntimeConfig cfg, Handler handler)
    : cfg_(cfg),
      metrics_(std::make_unique<telemetry::MetricsRegistry>(
          cfg.num_workers,
          telemetry::kEnabled ? cfg.telemetry_trace_capacity : 1,
          cfg.num_dispatchers)),
      assigned_(std::make_unique<std::atomic<uint64_t>[]>(
          static_cast<size_t>(cfg.num_workers))),
      query_readers_(static_cast<size_t>(cfg.num_workers)),
      snapshot_readers_(static_cast<size_t>(cfg.num_workers))
{
    TQ_CHECK(cfg_.num_workers > 0);
    TQ_CHECK(cfg_.dispatch_batch >= 1);
    TQ_CHECK(cfg_.num_dispatchers >= 1 &&
             cfg_.num_dispatchers <= cfg_.num_workers &&
             cfg_.num_dispatchers <= telemetry::kMaxDispatcherShards);
    // Per-class mode (DESIGN.md §4i): a populated quantum table, or an
    // adaptive controller that needs one even with an empty config
    // table. FCFS never arms probes — its workers drop the table and
    // run the fixed path regardless.
    const bool per_class = (!cfg_.class_quantum_us.empty() ||
                            cfg_.adaptive_quantum) &&
                           cfg_.work != WorkPolicy::Fcfs;
    if (per_class) {
        quantum_table_ = std::make_unique<ClassQuantumTable>(
            ns_to_cycles(cfg_.quantum_us * 1e3));
        std::vector<double> initial(
            static_cast<size_t>(kMaxQuantumClasses), cfg_.quantum_us);
        for (size_t c = 0; c < cfg_.class_quantum_us.size() &&
                           c < static_cast<size_t>(kMaxQuantumClasses);
             ++c) {
            TQ_CHECK(cfg_.class_quantum_us[c] > 0);
            initial[c] = cfg_.class_quantum_us[c];
            quantum_table_->store(
                static_cast<int>(c),
                ns_to_cycles(cfg_.class_quantum_us[c] * 1e3));
        }
        if (cfg_.adaptive_quantum && telemetry::kEnabled) {
            QuantumControllerConfig qc;
            qc.target_slowdown = cfg_.quantum_slo_slowdown;
            qc.gain = cfg_.quantum_adapt_gain;
            qc.min_quantum_us = cfg_.quantum_min_us;
            qc.max_quantum_us = cfg_.quantum_max_us;
            controller_ = std::make_unique<QuantumController>(
                qc, std::move(initial));
        }
    }
    for (int w = 0; w < cfg_.num_workers; ++w)
        workers_.push_back(std::make_unique<Worker>(
            w, cfg_, handler, &metrics_->worker(w), &lc_,
            quantum_table_.get()));
    for (int d = 0; d < cfg_.num_dispatchers; ++d) {
        shards_.push_back(std::make_unique<DispatcherShard>(cfg_, d));
        DispatcherShard &sh = *shards_.back();
        TQ_CHECK(sh.span.count >= 1);
        for (int i = 0; i < sh.span.count; ++i)
            sh.stat_lines.push_back(
                &workers_[static_cast<size_t>(sh.span.first + i)]
                     ->stats_line());
    }
}

Runtime::~Runtime()
{
    stop();
}

void
Runtime::start()
{
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    TQ_CHECK(!started_);
    started_ = true;
    TQ_CHECK(lc_.advance(Lifecycle::Created, Lifecycle::Running));
    live_threads_.store(static_cast<int>(shards_.size()) +
                            cfg_.num_workers,
                        std::memory_order_relaxed);
    dispatchers_live_.store(static_cast<int>(shards_.size()),
                            std::memory_order_relaxed);
    for (size_t d = 0; d < shards_.size(); ++d)
        threads_.emplace_back([this, d] {
            dispatcher_main(static_cast<int>(d));
            live_threads_.fetch_sub(1, std::memory_order_acq_rel);
        });
    for (auto &w : workers_)
        threads_.emplace_back([&w, this] {
            w->run();
            live_threads_.fetch_sub(1, std::memory_order_acq_rel);
        });
}

void
Runtime::stop()
{
    (void)drain(cfg_.stop_deadline_sec);
}

bool
Runtime::drain(double deadline_sec)
{
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (lc_.phase() == Lifecycle::Stopped)
        return drained_clean_; // idempotent: repeat the first outcome
    if (!started_) {
        // Never started: there are no threads to quiesce, but submit()
        // accepts in Created so clients may have pre-queued into RX.
        // Those requests will never be forwarded — count them abandoned
        // instead of letting them vanish from the accounting (the early
        // return here used to report a clean drain while losing them).
        lc_.escalate(Lifecycle::Stopped);
        for (auto &sh : shards_)
            while (sh->rx.pop())
                sh->counters.abandoned.fetch_add(
                    1, std::memory_order_relaxed);
        drained_clean_ =
            abandoned_jobs() == 0 && dropped_responses() == 0;
        return drained_clean_;
    }

    // Running -> Draining: submit() starts rejecting, each dispatcher
    // shard forwards what is queued and exits, workers finish and exit.
    // (A no-op if a concurrent caller already moved the state forward.)
    lc_.advance(Lifecycle::Running, Lifecycle::Draining);

    const Cycles deadline =
        rdcycles() + ns_to_cycles(deadline_sec * 1e9);
    while (live_threads_.load(std::memory_order_acquire) > 0 &&
           rdcycles() < deadline)
        std::this_thread::yield();

    if (live_threads_.load(std::memory_order_acquire) > 0) {
        // Deadline expired: escalate. Every spin loop in the datapath
        // checks this phase, so the joins below are bounded.
        lc_.escalate(Lifecycle::Stopping);
#if defined(TQ_FAULT_INJECTION_ENABLED)
        // Frozen fault sites model hung threads; the forced stop is the
        // point where the machinery reclaims them, so let them go or
        // the joins below would inherit the hang.
        fault::FaultInjector::instance().release_all();
#endif
    }
    for (auto &t : threads_)
        t.join();
    threads_.clear();
    lc_.escalate(Lifecycle::Stopped);

    // Submissions that raced the Running -> Draining transition can land
    // in an RX queue after its shard's final sweep; they were never
    // forwarded, so count them abandoned. Every thread is joined, so
    // the sweep races nothing (stealing stops at Draining).
    for (auto &sh : shards_)
        while (sh->rx.pop())
            sh->counters.abandoned.fetch_add(1,
                                             std::memory_order_relaxed);
    // Likewise a dispatcher can push into a worker's ring after that
    // (force-stopped) worker's own final sweep; a second sweep is safe
    // now and closes the accounting.
    for (auto &w : workers_)
        w->abandon_remaining();

    drained_clean_ = abandoned_jobs() == 0 && dropped_responses() == 0;
    return drained_clean_;
}

int
Runtime::pick_shard()
{
    // Front-tier JSQ: snapshot the shards' advertised load lines (one
    // relaxed load each; the lines are shard-written, submitter-read)
    // and take the rotated minimum. The rotation counter is
    // submitter-local, so concurrent clients spread tied picks without
    // sharing any tie-break state (common/shard.h).
    static thread_local uint64_t rotation = 0;
    uint32_t loads[telemetry::kMaxDispatcherShards];
    const size_t n = shards_.size();
    for (size_t s = 0; s < n; ++s)
        loads[s] =
            shards_[s]->load_line.load.load(std::memory_order_relaxed);
    return pick_min_rotated(loads, n, rotation++);
}

bool
Runtime::submit(const Request &req)
{
    // Created is accepted so clients may pre-queue before start().
    if (lc_.phase() > Lifecycle::Running)
        return false;
    if (shards_.size() == 1)
        return shards_[0]->rx.push(req);
    return shards_[static_cast<size_t>(pick_shard())]->rx.push(req);
}

bool
Runtime::submit_to_shard(const Request &req, int shard)
{
    TQ_CHECK(shard >= 0 && shard < static_cast<int>(shards_.size()));
    if (lc_.phase() > Lifecycle::Running)
        return false;
    return shards_[static_cast<size_t>(shard)]->rx.push(req);
}

size_t
Runtime::drain_responses(std::vector<Response> &out)
{
    // Probe occupancy first so one reserve covers the burst: under a
    // drain storm the collector used to reallocate log2(n) times while
    // popping one response at a time. The probe is racy-low (workers
    // keep pushing), so pop_n keeps collecting past it until a ring
    // reads empty.
    size_t expected = out.size();
    for (const auto &w : workers_)
        expected += w->tx_ring().size();
    out.reserve(expected);

    const size_t before = out.size();
    for (auto &w : workers_) {
        auto &ring = w->tx_ring();
        for (;;) {
            const size_t old = out.size();
            const size_t want = std::max<size_t>(ring.size(), 1);
            out.resize(old + want);
            const size_t got = ring.pop_n(&out[old], want);
            out.resize(old + got);
            if (got < want)
                break; // ring drained (or a partial final batch)
        }
    }
    return out.size() - before;
}

uint64_t
Runtime::abandoned_jobs() const
{
    uint64_t n = 0;
    for (const auto &sh : shards_)
        n += sh->counters.abandoned.load(std::memory_order_relaxed);
    for (const auto &w : workers_)
        n += w->abandoned_jobs();
    return n;
}

uint64_t
Runtime::dropped_responses() const
{
    uint64_t n = 0;
    for (const auto &w : workers_)
        n += w->dropped_responses();
    return n;
}

uint64_t
Runtime::tx_ring_full_spins() const
{
    uint64_t n = 0;
    for (const auto &w : workers_)
        n += w->tx_full_spins();
    return n;
}

std::vector<uint64_t>
Runtime::queue_lengths()
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    std::vector<uint64_t> lens(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w) {
        const uint64_t fin =
            query_readers_[w].read_finished(workers_[w]->stats_line());
        const uint64_t asn = assigned_[w].load(std::memory_order_relaxed);
        // assigned_ is bumped *after* the ring push, so a fast worker can
        // transiently put finished ahead of assigned; clamp instead of
        // wrapping to 2^64.
        lens[w] = asn > fin ? asn - fin : 0;
    }
    return lens;
}

int
Runtime::pick_worker(DispatcherShard &sh)
{
    // Policies operate over the shard's owned span; returned ids are
    // global worker indices.
    const int first = sh.span.first;
    const int n = sh.span.count;
    switch (cfg_.dispatch) {
      case DispatchPolicy::Random:
        return first +
               static_cast<int>(sh.rng.below(static_cast<uint64_t>(n)));
      case DispatchPolicy::PowerOfTwo: {
        if (n == 1)
            return first; // no second worker to sample; degrade gracefully
        const int a =
            static_cast<int>(sh.rng.below(static_cast<uint64_t>(n)));
        int b =
            static_cast<int>(sh.rng.below(static_cast<uint64_t>(n - 1)));
        if (b >= a)
            ++b;
        const auto len = [&](int i) {
            sh.finished_view[static_cast<size_t>(i)] =
                sh.readers[static_cast<size_t>(i)].read_finished(
                    *sh.stat_lines[static_cast<size_t>(i)]);
            const uint64_t asn =
                assigned_[static_cast<size_t>(first + i)].load(
                    std::memory_order_relaxed);
            const uint64_t fin = sh.finished_view[static_cast<size_t>(i)];
            // assigned_ is bumped *after* the ring push, so a fast
            // worker can transiently put finished ahead of assigned;
            // clamp so it is not mis-ranked as infinitely loaded.
            return asn > fin ? asn - fin : 0;
        };
        return first + (len(a) <= len(b) ? a : b);
      }
      case DispatchPolicy::JsqRandom:
      case DispatchPolicy::JsqMsq:
        refresh_dispatch_views(sh);
        return pick_worker_from_view(sh);
    }
    TQ_CHECK(false);
    return first;
}

void
Runtime::refresh_dispatch_views(DispatcherShard &sh)
{
    // Refresh the shard's JSQ view from its workers' counter lines:
    // queue length = assigned - finished (delta-tracked across wraps,
    // clamped at 0 against the transient finished>assigned race noted
    // above). This is the only place a dispatcher touches shared cache
    // lines for load balancing; everything downstream works on the
    // packed view until the next batch boundary. stat_lines keeps the
    // walk over the workers' lines pointer-chase-free. The length sum
    // doubles as the shard's aggregate-load input (shard_front.h).
    const size_t n = static_cast<size_t>(sh.span.count);
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
        sh.finished_view[i] = sh.readers[i].read_finished(*sh.stat_lines[i]);
        const uint64_t asn =
            assigned_[static_cast<size_t>(sh.span.first) + i].load(
                std::memory_order_relaxed);
        const uint64_t len =
            asn > sh.finished_view[i] ? asn - sh.finished_view[i] : 0;
        sh.view.set_len(i, len);
        sum += len;
        if (cfg_.dispatch == DispatchPolicy::JsqMsq)
            sh.view.set_quanta(
                i, WorkerStatsReader::read_current_quanta(*sh.stat_lines[i]));
    }
    sh.queue_sum = sum;
}

int
Runtime::pick_worker_from_view(DispatcherShard &sh)
{
    // JSQ over the shard's packed local view (dispatch_view.h), with
    // the policy's tie-break. With a batch size of 1 (a refresh before
    // every call) this is exactly the unbatched policy; inside a batch,
    // ties use the boundary snapshot of current_quanta and queue
    // lengths grow with each assignment. The view is span-local;
    // translate to a global worker id on the way out.
    const int best = cfg_.dispatch == DispatchPolicy::JsqRandom
                         ? sh.view.pick_jsq_random(sh.rng)
                         : sh.view.pick_jsq_msq();
    TQ_CHECK(best >= 0);
    sh.view.bump_len(static_cast<size_t>(best));
    return sh.span.first + best;
}

void
Runtime::publish_load(DispatcherShard &sh, uint64_t just_pushed)
{
    // Advertised load = owned-span queue sum as of the last refresh,
    // plus what this batch just pushed (the refresh predates those
    // assignments), plus the RX backlog. Saturate into the uint32 the
    // front tier compares.
    const uint64_t load = sh.queue_sum + just_pushed + sh.rx.size();
    sh.load_line.load.store(load > UINT32_MAX
                                ? UINT32_MAX
                                : static_cast<uint32_t>(load),
                            std::memory_order_relaxed);
}

telemetry::MetricsSnapshot
Runtime::telemetry_snapshot()
{
    telemetry::MetricsSnapshot snap = metrics_->snapshot();
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        // Cross-check against the dispatcher/worker stats contract: the
        // shared 32-bit total_quanta counters, read wrap-tolerantly.
        for (size_t w = 0; w < workers_.size(); ++w)
            snap.stats_total_quanta +=
                snapshot_readers_[w].read_total_quanta(
                    workers_[w]->stats_line());
    }
    // Backpressure/lifecycle counters record in every build (cold paths
    // only), so fold them in even when TQ_TELEMETRY is off.
    snap.tx_ring_full_spins = tx_ring_full_spins();
    snap.dispatch_ring_full_spins = dispatch_ring_full_spins();
    snap.dropped_responses = dropped_responses();
    snap.abandoned_jobs = abandoned_jobs();
    for (const auto &w : workers_)
        snap.starvation_promotions += w->starvation_promotions();
    return snap;
}

bool
Runtime::adapt_quanta()
{
    if (!controller_ || !quantum_table_)
        return false; // static fallback: fixed path, adaptation off, or
                      // a -DTQ_TELEMETRY=OFF build (no controller made)
    const telemetry::MetricsSnapshot snap = telemetry_snapshot();
    std::vector<ClassObservation> obs(snap.per_class.size());
    for (size_t c = 0; c < snap.per_class.size(); ++c) {
        const telemetry::ClassQuantaStats &pc = snap.per_class[c];
        obs[c].completed = pc.finished;
        obs[c].mean_service_us = pc.service.mean_ns / 1e3;
        obs[c].p99_sojourn_us = pc.sojourn.p99_ns / 1e3;
    }
    bool changed;
    {
        // Same mutex as the snapshot's wrap-state: controller updates
        // serialize with each other at snapshot rate.
        std::lock_guard<std::mutex> lock(stats_mu_);
        changed = controller_->update(obs);
        if (changed) {
            const std::vector<double> &q = controller_->quanta_us();
            for (size_t c = 0;
                 c < q.size() &&
                 c < static_cast<size_t>(kMaxQuantumClasses);
                 ++c)
                quantum_table_->store(static_cast<int>(c),
                                      ns_to_cycles(q[c] * 1e3));
        }
    }
    return changed;
}

double
Runtime::class_quantum_us(int job_class) const
{
    if (!quantum_table_)
        return cfg_.quantum_us;
    return cycles_to_ns(quantum_table_->load(
               ClassQuantumTable::slot_of(job_class))) /
           1e3;
}

size_t
Runtime::drain_trace(std::vector<telemetry::TraceEvent> &out)
{
    return metrics_->drain_trace(out);
}

bool
Runtime::push_request(DispatcherShard &sh, int target, const Request &req)
{
    TQ_FAULT_SITE(DispatcherPush);
    auto &ring = workers_[static_cast<size_t>(target)]->dispatch_ring();
    // Worker ring full: bounded backpressure — spin with a stop check,
    // then a counted drop — mirroring the worker's TX policy.
    const size_t limit = cfg_.push_spin_limit;
    size_t spins = 0;
    while (!ring.push(req)) {
        if (lc_.force_stop() || (limit != 0 && spins >= limit)) {
            sh.counters.abandoned.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        ++spins;
        sh.counters.full_spins.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
    }
    return true;
}

size_t
Runtime::steal_into(DispatcherShard &sh, Request *buf, size_t buf_len)
{
    // Victim selection off the advertised load lines: the most-loaded
    // sibling at or above the steal trigger. The estimate can be stale
    // — worst case the pop below comes home empty, which costs one
    // failed CAS round on an idle path.
    int victim = -1;
    uint32_t best = 0;
    for (const auto &other : shards_) {
        if (other->index == sh.index)
            continue;
        const uint32_t load =
            other->load_line.load.load(std::memory_order_relaxed);
        if (load >= cfg_.steal_min_load && load > best) {
            best = load;
            victim = other->index;
        }
    }
    if (victim < 0)
        return 0;
    const size_t want = std::min(cfg_.steal_max_batch, buf_len);
    const size_t got =
        shards_[static_cast<size_t>(victim)]->rx.pop_n(buf, want);
#if defined(TQ_TELEMETRY_ENABLED)
    if (got > 0) {
        telemetry::DispatcherTelemetry &dt =
            metrics_->dispatcher(sh.index);
        dt.steals.fetch_add(1, std::memory_order_relaxed);
        dt.steal_batch.add(got);
    }
#endif
    return got;
}

void
Runtime::dispatch_batch(DispatcherShard &sh, Request *reqs, size_t n)
{
    const bool jsq_policy = cfg_.dispatch == DispatchPolicy::JsqMsq ||
                            cfg_.dispatch == DispatchPolicy::JsqRandom;
    const bool sharded = shards_.size() > 1;
    // One arrival stamp covers the batch: the requests were all in
    // RX when the batch was claimed, and per-request RDTSC is
    // exactly the kind of per-job cost batching amortizes away.
    const Cycles arrived_at = rdcycles();
    // Non-JSQ policies do not read the view, but a sharded runtime
    // still refreshes per batch: the queue-sum side effect feeds the
    // advertised load line the front tier steers by.
    if (jsq_policy || sharded)
        refresh_dispatch_views(sh);
    uint64_t pushed = 0;
    for (size_t i = 0; i < n; ++i) {
        Request &req = reqs[i];
        req.arrival_cycles = arrived_at;
        // Scatter-gather expansion: a request with fanout k becomes
        // k shard pushes, each placed by its own policy pick (JSQ's
        // incremental bump_len spreads the shards naturally). The
        // degenerate k=1 loop is exactly the classic per-request
        // path. Per-shard counters: dispatched_total/assigned_ move
        // in worker-job units everywhere downstream.
        const uint32_t fanout = req.fanout == 0 ? 1 : req.fanout;
        for (uint32_t s = 0; s < fanout; ++s) {
            req.shard = s;
            const int target =
                jsq_policy ? pick_worker_from_view(sh) : pick_worker(sh);
#if defined(TQ_TELEMETRY_ENABLED)
            // Stamp the handoff *before* the push: once the request
            // is in the ring the worker may already be reading it.
            const Cycles dispatched_at = rdcycles();
            req.dispatch_cycles = dispatched_at;
#endif
            if (!push_request(sh, target, req))
                continue; // dropped (counted); the outer loop
                          // re-checks the phase per batch
            assigned_[static_cast<size_t>(target)].fetch_add(
                1, std::memory_order_relaxed);
            sh.counters.dispatched_total.fetch_add(
                1, std::memory_order_relaxed);
            ++pushed;
#if defined(TQ_TELEMETRY_ENABLED)
            telemetry::DispatcherTelemetry &dt =
                metrics_->dispatcher(sh.index);
            dt.dispatched.fetch_add(1, std::memory_order_relaxed);
            dt.dispatch_cycles.add(dispatched_at - req.arrival_cycles);
            dt.trace.record(telemetry::EventKind::JobDispatched, req.id,
                            static_cast<uint32_t>(target));
#endif
        }
    }
#if defined(TQ_TELEMETRY_ENABLED)
    metrics_->dispatcher(sh.index).batch_occupancy.add(n);
#endif
    if (sharded)
        publish_load(sh, pushed);
}

void
Runtime::dispatcher_main(int shard_index)
{
    DispatcherShard &sh = *shards_[static_cast<size_t>(shard_index)];
    // RX is popped in batches: one batch dequeue (one contended RMW on
    // the MPMC cursor), one JSQ view refresh (one pass over the shared
    // counter lines), then per-request work against local state only.
    // Under light load batches degenerate to size 1 and the path is the
    // classic per-request one; under pressure the shared-line traffic
    // is divided by the batch occupancy (DESIGN.md "Batched hot path").
    const bool sharded = shards_.size() > 1;
    std::vector<Request> batch(
        std::max(cfg_.dispatch_batch, cfg_.steal_max_batch));
    int empty_polls = 0;
    for (;;) {
        TQ_FAULT_SITE(DispatcherPoll);
        const Lifecycle phase = lc_.phase();
        if (phase >= Lifecycle::Stopping)
            break;
        if (sharded && cfg_.shard_window > 0) {
            // Backpressure: past the window, hold the backlog in RX
            // (where siblings can steal it) instead of burying it in
            // the workers' private rings. queue_sum is the view from
            // the last refresh, so the first test is free; only a full
            // window pays for a re-read before deciding to wait.
            const uint64_t window =
                cfg_.shard_window * static_cast<uint64_t>(sh.span.count);
            if (sh.queue_sum >= window) {
                refresh_dispatch_views(sh);
                publish_load(sh, 0);
                if (sh.queue_sum >= window) {
                    std::this_thread::yield();
                    continue;
                }
            }
        }
        const size_t n = sh.rx.pop_n(batch.data(), cfg_.dispatch_batch);
        if (n == 0) {
            if (phase == Lifecycle::Draining)
                break; // everything queued here has been forwarded
            if (++empty_polls >= 8) {
                empty_polls = 0;
                if (sharded) {
                    // Idle housekeeping, off the hot path: re-advertise
                    // the decaying load (workers keep finishing while
                    // RX is empty) and, with nothing of our own left,
                    // try one bounded steal from the most-loaded
                    // sibling. Stealing only runs in Running, so a
                    // draining shard's final sweep races nothing.
                    refresh_dispatch_views(sh);
                    publish_load(sh, 0);
                    if (phase == Lifecycle::Running &&
                        cfg_.steal_max_batch > 0 && sh.queue_sum == 0) {
                        const size_t stolen =
                            steal_into(sh, batch.data(), batch.size());
                        if (stolen > 0) {
                            dispatch_batch(sh, batch.data(), stolen);
                            continue;
                        }
                    }
                }
                std::this_thread::yield();
            } else {
                cpu_relax();
            }
            continue;
        }
        empty_polls = 0;
        dispatch_batch(sh, batch.data(), n);
    }
    // Force-stopped with requests still queued: they will never be
    // forwarded — count them abandoned before announcing completion.
    while (sh.rx.pop())
        sh.counters.abandoned.fetch_add(1, std::memory_order_relaxed);
    // The workers key their drain exit on dispatcher_done; with a
    // sharded tier it means *every* shard is finished, so the last one
    // out sets it.
    if (dispatchers_live_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        lc_.dispatcher_done.store(true, std::memory_order_release);
}

} // namespace tq::runtime
