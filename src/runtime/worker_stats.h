/**
 * @file
 * The dispatcher/worker statistics contract (paper section 4).
 *
 * Each worker owns one cache line of counters that the dispatcher reads
 * periodically: the number of finished jobs (for JSQ queue lengths, as
 * assigned-minus-finished) and the number of quanta serviced for the
 * worker's *current* jobs (for MSQ tie-breaking). Counters are free to
 * wrap: the dispatcher tracks deltas between reads, so their width does
 * not bound the totals (paper section 4).
 */
#ifndef TQ_RUNTIME_WORKER_STATS_H
#define TQ_RUNTIME_WORKER_STATS_H

#include <atomic>
#include <cstdint>

#include "conc/cacheline.h"

namespace tq::runtime {

/**
 * One worker's shared statistics cache line. Writer: the worker, and
 * only the worker — the dispatcher and stats readers load it but never
 * store, so the line ping-pongs at the worker's completion rate, not
 * the (much higher) dispatch rate. The three counters live together
 * deliberately: the dispatcher's JSQ/MSQ refresh wants `finished` and
 * `current_quanta` in the same load, and one line per worker keeps the
 * 16-worker refresh to 16 line reads. Field order is the read order of
 * refresh_dispatch_views(); the pad keeps neighbouring workers' lines
 * (e.g. in a bench's contiguous array) from false-sharing.
 */
struct alignas(kCacheLineSize) WorkerStatsLine
{
    /** Jobs completed (monotonic modulo wrap). */
    std::atomic<uint32_t> finished{0};

    /** Sum of serviced quanta across the jobs currently admitted to the
     *  worker (rises on each quantum, falls when a job completes).
     *  Counts *grants*, not cycles: under per-class quanta
     *  (runtime/quantum.h) a grant may be any class's budget, so MSQ
     *  tie-breaking keeps ranking by slices attained — exactly the
     *  blind signal the paper uses — without the dispatcher knowing
     *  per-class budgets. */
    std::atomic<uint32_t> current_quanta{0};

    /** Total quanta serviced (monotonic modulo wrap; stats/tests).
     *  Like current_quanta this counts grants, whatever each grant's
     *  per-class cycle budget was. */
    std::atomic<uint32_t> total_quanta{0};

    char pad[kCacheLineSize - 3 * sizeof(std::atomic<uint32_t>)];
};

static_assert(sizeof(WorkerStatsLine) == kCacheLineSize &&
                  alignof(WorkerStatsLine) == kCacheLineSize,
              "stats must occupy exactly one cache line");

/**
 * Dispatcher-side view of one worker's counters: tracks cumulative
 * totals across 32-bit wraps by accumulating deltas between reads.
 */
class WorkerStatsReader
{
  public:
    /** Refresh from the worker's line; returns cumulative finished. */
    uint64_t
    read_finished(const WorkerStatsLine &line)
    {
        const uint32_t now = line.finished.load(std::memory_order_relaxed);
        cumulative_finished_ += static_cast<uint32_t>(now - last_finished_);
        last_finished_ = now;
        return cumulative_finished_;
    }

    /** Current-jobs quanta sum (instantaneous, no wrap tracking). */
    static uint32_t
    read_current_quanta(const WorkerStatsLine &line)
    {
        return line.current_quanta.load(std::memory_order_relaxed);
    }

    /**
     * Refresh from the worker's line; returns cumulative total quanta.
     *
     * total_quanta is monotonic modulo 32-bit wrap, exactly like
     * finished: reading the raw atomic is wrap-unsafe once a worker has
     * serviced more than 2^32 quanta (under 2h at 1M quanta/s per the
     * paper's rates), so consumers — the telemetry snapshot, stats,
     * tests — must go through this delta-tracking reader instead.
     */
    uint64_t
    read_total_quanta(const WorkerStatsLine &line)
    {
        const uint32_t now = line.total_quanta.load(std::memory_order_relaxed);
        cumulative_quanta_ += static_cast<uint32_t>(now - last_quanta_);
        last_quanta_ = now;
        return cumulative_quanta_;
    }

  private:
    uint32_t last_finished_ = 0;
    uint64_t cumulative_finished_ = 0;
    uint32_t last_quanta_ = 0;
    uint64_t cumulative_quanta_ = 0;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_WORKER_STATS_H
