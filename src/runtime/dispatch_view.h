/**
 * @file
 * Packed dispatcher-local JSQ/MSQ view with a SIMD pick (paper s. 4).
 *
 * The dispatcher's per-job decision used to scan a vector<uint64_t> of
 * queue lengths plus a parallel vector<uint32_t> of quanta — two
 * allocations, 8 bytes per worker for values that are small by
 * construction. This view packs both into contiguous, cache-line-aligned
 * `uint32_t` arrays so 16 workers' lengths fit in one line. The pick is
 * adaptive: one-line views (<= 16 workers, the paper's configuration)
 * take a single-pass scan with the tie-break folded into the comparison
 * — measured fastest at that width — while multi-line views use a SIMD
 * horizontal min (SSE2 on x86-64, NEON on aarch64) with a movemask tie
 * walk; a portable scalar path doubles as the property-test reference
 * (tests/layout_test.cc). A tournament tree was benched as the third
 * alternative: it loses at one-line width and only wins from ~64 lanes,
 * so it stays bench-local — see docs/cache_line_analysis.md §"Picking
 * the pick" and BENCH_dispatch.json for the numbers.
 *
 * Semantics are bit-identical to the scalar scan it replaces:
 *  - lengths are clamped into [0, kLenMax]; real queue depth is bounded
 *    by ring_capacity + tasks_per_worker (default < 2^15), so the clamp
 *    is unreachable in practice and exists to make the uint32 narrowing
 *    and the signed SSE2 compares safe by construction;
 *  - JSQ-MSQ tie-break: minimum length, then maximum current-quanta,
 *    then lowest worker index (DESIGN.md §4c);
 *  - JSQ-random consumes the RNG identically to the old loop (one
 *    `below(++tie_count)` per tied worker, ascending index), so seeded
 *    runs reproduce.
 *
 * Plain struct, no globals: RackSched-style inter-shard JSQ (PAPERS.md)
 * can instantiate one view per shard. Single-threaded by design — the
 * owning dispatcher both writes and reads it; nothing here is shared.
 */
#ifndef TQ_RUNTIME_DISPATCH_VIEW_H
#define TQ_RUNTIME_DISPATCH_VIEW_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

#include "common/check.h"
#include "conc/cacheline.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define TQ_DISPATCH_VIEW_SIMD "sse2"
#elif defined(__aarch64__)
#include <arm_neon.h>
#define TQ_DISPATCH_VIEW_SIMD "neon"
#else
#define TQ_DISPATCH_VIEW_SIMD "scalar"
#endif

namespace tq::runtime {

/** Packed per-shard JSQ/MSQ state for one dispatcher. */
class DispatchView
{
  public:
    /**
     * Saturation bound for stored queue lengths (INT32_MAX). Keeping
     * every lane non-negative as a *signed* 32-bit value lets the SSE2
     * path use `_mm_cmpgt_epi32` (there is no unsigned compare before
     * SSE4.1) with exact unsigned semantics.
     */
    static constexpr uint32_t kLenMax = 0x7fffffffu;

    /** uint32 lanes per cache line; arrays are padded to a multiple so
     *  vector loads never touch unowned memory. */
    static constexpr size_t kLanesPerLine = kCacheLineSize / sizeof(uint32_t);

    /** @param workers number of workers (>= 1) this view ranks. */
    explicit DispatchView(size_t workers)
        : n_(workers),
          padded_((workers + kLanesPerLine - 1) & ~(kLanesPerLine - 1)),
          len_(alloc_lanes(padded_)), quanta_(alloc_lanes(padded_))
    {
        TQ_CHECK(workers >= 1);
        for (size_t i = 0; i < padded_; ++i) {
            // Padding lanes hold kLenMax so they can never win the min
            // (pick loops additionally stop at n_, which covers the
            // all-workers-saturated corner).
            len_[i] = i < n_ ? 0 : kLenMax;
            quanta_[i] = 0;
        }
    }

    DispatchView(const DispatchView &) = delete;
    DispatchView &operator=(const DispatchView &) = delete;
    DispatchView(DispatchView &&) = default;
    DispatchView &operator=(DispatchView &&) = default;

    /** Workers ranked by this view. */
    size_t workers() const { return n_; }

    /** Allocated lanes (workers rounded up to a line multiple). */
    size_t padded_lanes() const { return padded_; }

    /** Store worker @p i's queue length, saturating at kLenMax. */
    void
    set_len(size_t i, uint64_t len)
    {
        len_[i] = len < kLenMax ? static_cast<uint32_t>(len) : kLenMax;
    }

    /** One more job assigned to worker @p i (saturating). */
    void
    bump_len(size_t i)
    {
        if (len_[i] < kLenMax)
            ++len_[i];
    }

    /** Stored (clamped) length of worker @p i. */
    uint32_t len(size_t i) const { return len_[i]; }

    /** Store worker @p i's current-jobs quanta sum (MSQ tie-break key). */
    void set_quanta(size_t i, uint32_t q) { quanta_[i] = q; }

    /** Stored quanta snapshot of worker @p i. */
    uint32_t quanta(size_t i) const { return quanta_[i]; }

    /** Smallest stored length across the real workers. */
    uint32_t
    min_len() const
    {
#if defined(__SSE2__)
        const __m128i *v =
            reinterpret_cast<const __m128i *>(len_.get());
        __m128i acc = _mm_load_si128(v);
        for (size_t i = 1; i < padded_ / 4; ++i)
            acc = min_u32x4(acc, _mm_load_si128(v + i));
        acc = min_u32x4(acc,
                        _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
        acc = min_u32x4(acc,
                        _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
        return static_cast<uint32_t>(_mm_cvtsi128_si32(acc));
#elif defined(__aarch64__)
        uint32x4_t acc = vld1q_u32(len_.get());
        for (size_t i = 1; i < padded_ / 4; ++i)
            acc = vminq_u32(acc, vld1q_u32(len_.get() + 4 * i));
        return vminvq_u32(acc);
#else
        return min_len_scalar();
#endif
    }

    /**
     * JSQ pick with MSQ tie-breaking: the least-loaded worker; among
     * ties the one whose current jobs have received the most quanta
     * (it should finish them soonest, paper s. 3.2); among remaining
     * ties the lowest index. Does not mutate the view — callers bump
     * the winner via bump_len().
     */
    int
    pick_jsq_msq() const
    {
        // One-line views (<= 16 workers, the common deployment and the
        // paper's configuration) take a single-pass branchy scan: at
        // this width a well-predicted scalar loop over one cache line
        // beats every vector formulation we benched (two-pass
        // min+movemask, three-pass branch-free, tournament tree) because
        // the dispatcher's pick stream is highly repetitive and the
        // horizontal reductions cost more than the 16 predicted
        // compares they replace. See docs/cache_line_analysis.md
        // §"Picking the pick" and BENCH_dispatch.json.
        if (padded_ <= kLanesPerLine)
            return pick_jsq_msq_scan(n_);
        const uint32_t best_len = min_len();
        int best = -1;
        uint32_t best_quanta = 0;
#if defined(__SSE2__)
        // Tie scan: vector-compare four lanes at a time against the min
        // and walk only the matching bits. movemask bit order is lane
        // order, so ties are visited in ascending worker index and the
        // scalar tie-break below is reproduced exactly.
        const __m128i target = _mm_set1_epi32(static_cast<int>(best_len));
        const __m128i *v =
            reinterpret_cast<const __m128i *>(len_.get());
        for (size_t base = 0; base < padded_; base += 4) {
            int mask = _mm_movemask_ps(_mm_castsi128_ps(
                _mm_cmpeq_epi32(_mm_load_si128(v + base / 4), target)));
            while (mask != 0) {
                const size_t i =
                    base + static_cast<size_t>(__builtin_ctz(
                               static_cast<unsigned>(mask)));
                mask &= mask - 1;
                if (i >= n_)
                    break; // padding lanes (only tie when saturated)
                const uint32_t q = quanta_[i];
                if (best < 0 || q > best_quanta) {
                    best = static_cast<int>(i);
                    best_quanta = q;
                }
            }
        }
        return best;
#else
        for (size_t i = 0; i < n_; ++i) {
            if (len_[i] != best_len)
                continue;
            const uint32_t q = quanta_[i];
            if (best < 0 || q > best_quanta) {
                best = static_cast<int>(i);
                best_quanta = q;
            }
        }
        return best;
#endif
    }

    /**
     * JSQ pick with uniform-random tie-breaking. Consumes @p rng exactly
     * like the scalar loop it replaced — one `below(++tie_count)` per
     * tied worker in ascending index order — so seeded runs reproduce
     * across the scalar/SIMD boundary (only min_len() vectorizes; the
     * reservoir is inherently sequential in its RNG stream).
     */
    template <typename RngT>
    int
    pick_jsq_random(RngT &rng) const
    {
        const uint32_t best_len = min_len();
        int best = -1;
        uint64_t tie_count = 0;
        for (size_t i = 0; i < n_; ++i)
            if (len_[i] == best_len && rng.below(++tie_count) == 0)
                best = static_cast<int>(i);
        return best;
    }

    /** Portable reference for min_len(); the property-test oracle. */
    uint32_t
    min_len_scalar() const
    {
        uint32_t best = kLenMax;
        for (size_t i = 0; i < n_; ++i)
            best = len_[i] < best ? len_[i] : best;
        return best;
    }

    /** Portable reference for pick_jsq_msq(); the property-test oracle
     *  (the pre-SIMD dispatcher loop, verbatim). */
    int
    pick_jsq_msq_scalar() const
    {
        const uint32_t best_len = min_len_scalar();
        int best = -1;
        uint32_t best_quanta = 0;
        for (size_t i = 0; i < n_; ++i) {
            if (len_[i] != best_len)
                continue;
            const uint32_t q = quanta_[i];
            if (best < 0 || q > best_quanta) {
                best = static_cast<int>(i);
                best_quanta = q;
            }
        }
        return best;
    }

  private:
    /**
     * Single-pass argmin over the first @p count lanes with the JSQ-MSQ
     * tie-break folded into the comparison: strictly-smaller length
     * wins; equal length and strictly-larger quanta wins; otherwise the
     * incumbent (lower index) stays. Equivalent to the two-pass oracle
     * by induction over the scan prefix.
     */
    int
    pick_jsq_msq_scan(size_t count) const
    {
        int best = 0;
        uint32_t best_len = len_[0];
        uint32_t best_quanta = quanta_[0];
        for (size_t i = 1; i < count; ++i) {
            const uint32_t l = len_[i];
            const uint32_t q = quanta_[i];
            if (l < best_len || (l == best_len && q > best_quanta)) {
                best = static_cast<int>(i);
                best_len = l;
                best_quanta = q;
            }
        }
        return best;
    }

#if defined(__SSE2__)
    /** Unsigned 32-bit lane min via a signed compare-and-blend; exact
     *  because every lane is <= kLenMax (sign bit clear). */
    static __m128i
    min_u32x4(__m128i a, __m128i b)
    {
        const __m128i a_gt = _mm_cmpgt_epi32(a, b);
        return _mm_or_si128(_mm_and_si128(a_gt, b),
                            _mm_andnot_si128(a_gt, a));
    }
#endif

    struct LaneFree
    {
        void
        operator()(uint32_t *p) const
        {
            ::operator delete[](p, std::align_val_t{kCacheLineSize});
        }
    };
    using Lanes = std::unique_ptr<uint32_t[], LaneFree>;

    /** Line-aligned lane array: vector loads may be aligned loads and a
     *  16-worker view's lengths occupy exactly one line. */
    static Lanes
    alloc_lanes(size_t count)
    {
        return Lanes(new (std::align_val_t{kCacheLineSize})
                         uint32_t[count]);
    }

    friend struct ::tq::LayoutAudit;

    size_t n_;
    size_t padded_;
    Lanes len_;
    Lanes quanta_;
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_DISPATCH_VIEW_H
