/**
 * @file
 * TQ worker: a scheduler loop multiplexing task coroutines in quanta
 * (paper sections 3.2, 4).
 *
 * Each worker owns a fixed set of task coroutines, an SPSC dispatch ring
 * filled by the dispatcher, and an SPSC TX ring it pushes responses to
 * (responses bypass the dispatcher, as in the paper). The scheduler
 * keeps idle/busy task lists; before resuming a task it binds the
 * probe runtime's call_the_yield to that task's coroutine and arms the
 * quantum, so compiler-style probes inside the handler preempt the task
 * back to the scheduler.
 *
 * Admissions drain the dispatch ring in batches (SpscRing::pop_n — one
 * shared-index acquire/release pair per batch). Run-queue selection is
 * PS: ring rotation; FCFS: front of queue; LAS: an O(log n) binary
 * min-heap keyed on (quanta, admit_seq), FIFO among equal-quanta tasks
 * — the same order the previous O(n) scan produced.
 *
 * The loop is lifecycle-aware (runtime/lifecycle.h): in Draining it
 * finishes admitted jobs and exits once the dispatcher is done and the
 * dispatch ring is empty; in Stopping it abandons what is left. The TX
 * push is bounded backpressure — spin with a stop check, then a counted
 * drop — so a collector that stops draining can never wedge shutdown.
 */
#ifndef TQ_RUNTIME_WORKER_H
#define TQ_RUNTIME_WORKER_H

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "conc/spsc_ring.h"
#include "coro/coroutine.h"
#include "runtime/config.h"
#include "runtime/lifecycle.h"
#include "runtime/quantum.h"
#include "runtime/request.h"
#include "runtime/worker_stats.h"
#include "telemetry/telemetry.h"

namespace tq::runtime {

/** Application job handler; runs inside a task coroutine, probed. */
using Handler = std::function<uint64_t(const Request &)>;

/** One worker core's scheduler and execution state. */
class Worker
{
  public:
    /**
     * @param id worker index (trace thread id).
     * @param cfg runtime configuration (quantum, policies, ring sizes).
     * @param handler application job body.
     * @param telem this worker's telemetry slot; recording happens only
     *     in TQ_TELEMETRY builds, but the slot is always wired so
     *     snapshots work in every configuration.
     * @param lc the runtime's shared lifecycle control block; read at
     *     loop boundaries and inside every backpressure loop.
     * @param quanta the runtime's shared per-class quantum table, or
     *     nullptr for the fixed-quantum path (empty class_quantum_us and
     *     no adaptation): with no table the worker carries zero
     *     per-class state and behaves exactly as before the table
     *     existed (DESIGN.md §4i, byte-identical fallback).
     */
    Worker(int id, const RuntimeConfig &cfg, Handler handler,
           telemetry::WorkerTelemetry *telem, const LifecycleControl *lc,
           const ClassQuantumTable *quanta = nullptr);

    /** Dispatcher-side input ring (single producer: the dispatcher). */
    SpscRing<Request> &dispatch_ring() { return dispatch_ring_; }

    /** Response output ring (single consumer: the client/collector). */
    SpscRing<Response> &tx_ring() { return tx_ring_; }

    /** The shared statistics cache line (paper section 4). */
    WorkerStatsLine &stats_line() { return stats_; }

    /** Jobs admitted but not finished (readable from any thread). */
    size_t
    active_jobs() const
    {
        return busy_count_.load(std::memory_order_relaxed);
    }

    /** TX-ring-full spin iterations (backpressure pressure gauge). */
    uint64_t
    tx_full_spins() const
    {
        return tx_full_spins_.load(std::memory_order_relaxed);
    }

    /** Responses dropped by the overflow policy (force-stop with a full
     *  TX ring, or a push that exceeded cfg.push_spin_limit). */
    uint64_t
    dropped_responses() const
    {
        return dropped_responses_.load(std::memory_order_relaxed);
    }

    /** Jobs abandoned at forced shutdown: admitted-but-unfinished tasks
     *  plus requests still in the dispatch ring when the worker exited. */
    uint64_t
    abandoned_jobs() const
    {
        return abandoned_jobs_.load(std::memory_order_relaxed);
    }

    /**
     * Thread body: schedule until the lifecycle either drains this
     * worker dry (Draining + dispatcher done + empty ring + no busy
     * tasks) or force-stops it (Stopping; leftovers are counted
     * abandoned).
     */
    void run();

    /**
     * Count still-admitted tasks and dispatch-ring leftovers as
     * abandoned. Idempotent. run() calls it on exit, and the runtime
     * calls it once more after joining every thread: the dispatcher can
     * push into this ring after a force-stopped worker's own final
     * sweep, and that request must not vanish from the accounting.
     * Safe only from the worker thread or after it has been joined.
     */
    void abandon_remaining();

    /** Worker index within the runtime. */
    int id() const { return id_; }

    /** Grants the starvation guard forced ahead of the policy order
     *  (0 on the fixed-quantum path or with the guard disabled). */
    uint64_t
    starvation_promotions() const
    {
        return starvation_promotions_.load(std::memory_order_relaxed);
    }

    /** One class's scheduling account (per-class mode only). Plain
     *  fields, written only by the worker thread: read them after the
     *  thread has been joined (tests, post-drain reports). */
    struct ClassSched
    {
        int64_t deficit = 0;          ///< banked cycles, clamped to
                                      ///< +-deficit_clamp (DESIGN.md §4i)
        uint32_t skipped = 0;         ///< consecutive grants that went to
                                      ///< other classes while runnable
        uint32_t runnable = 0;        ///< tasks of this class in the runq
        uint64_t grants = 0;          ///< slices granted
        uint64_t granted_cycles = 0;  ///< sum of armed budgets (effective-
                                      ///< quantum parity with the sim)
    };

    /** Class @p slot's account. Zeros on the fixed-quantum path. Safe
     *  only from the worker thread or after it has been joined. */
    const ClassSched &
    class_sched(int slot) const
    {
        return class_sched_[static_cast<size_t>(
            ClassQuantumTable::slot_of(slot))];
    }

  private:
    /** One task coroutine slot and its current job's bookkeeping. */
    struct Task
    {
        Request req;               ///< job currently bound to the slot
        uint64_t result = 0;       ///< handler return value
        uint32_t quanta = 0;       ///< quanta consumed by the current job
        uint64_t admit_seq = 0;    ///< admission order (LAS FIFO ties)
        Cycles budget_cycles = 0;  ///< quantum resolved at admission (one
                                   ///< table load; the probe deadline
                                   ///< compares against this precomputed
                                   ///< cycle budget, DESIGN.md §4i)
        uint8_t cls = 0;           ///< quantum-table slot of req.job_class
        Cycles service_cycles = 0; ///< accumulated slice time (telemetry)
        bool started = false;      ///< first slice already ran
        bool has_job = false;      ///< a job is admitted to this slot
        bool job_done = false;     ///< handler returned; response pending
        std::unique_ptr<Coroutine> coro; ///< persistent task coroutine
    };

    /**
     * Min-heap order over (quanta, admit_seq) for std::push_heap (which
     * builds a max-heap, so the comparator is reversed): the task with
     * the fewest serviced quanta wins, FIFO among equals by admission
     * sequence. This reproduces the old O(n) scan's selection exactly
     * (the scan picked the earliest-queued minimum, which by induction
     * is the earliest-admitted one) at O(log n) per selection with no
     * mid-vector erase.
     */
    struct LasAfter
    {
        bool
        operator()(const Task *a, const Task *b) const
        {
            if (a->quanta != b->quanta)
                return a->quanta > b->quanta;
            return a->admit_seq > b->admit_seq;
        }
    };

    /** Admission batch: enough to refill every default task slot in one
     *  ring round trip without outgrowing the stack buffer. */
    static constexpr size_t kAdmitBatch = 32;

    void poll_admissions();
    void run_one_slice();
    void complete(Task *task);
    bool push_response(const Response &resp);

    /** Pop the next task per policy, or the most-starved class's best
     *  task when the starvation guard fires (per-class mode only). */
    Task *select_task();

    /** Extract class @p cls's best task from the run queue: the LAS
     *  minimum of that class, or the PS front-most. Cold path — only
     *  reached when the guard fires after starvation_promote_after
     *  consecutive skipped grants. */
    Task *extract_promoted(int cls);

    /** Effective budget at grant time: quantum + clamped deficit,
     *  floored at quantum/4 so a debt-laden class still progresses. */
    Cycles
    effective_budget(Cycles base, int64_t deficit) const
    {
        const int64_t budget = static_cast<int64_t>(base) + deficit;
        const int64_t floor = static_cast<int64_t>(base / 4) + 1;
        return static_cast<Cycles>(budget > floor ? budget : floor);
    }

    /** Admitted-but-unfinished tasks under the active work policy. */
    bool
    ready_empty() const
    {
        return cfg_.work == WorkPolicy::Las ? las_heap_.empty()
                                            : busy_.empty();
    }

    int id_;
    const RuntimeConfig cfg_;
    Handler handler_;
    telemetry::WorkerTelemetry *telem_;
    const LifecycleControl *lc_;
    Cycles quantum_cycles_;

    /** Per-class scheduling (DESIGN.md §4i). per_class_ is false on the
     *  fixed path (no table, or FCFS where probes never fire): then no
     *  member below is ever touched and run_one_slice() arms the same
     *  quantum_cycles_ budget as before the table existed. */
    const ClassQuantumTable *quanta_table_;
    bool per_class_;
    Cycles deficit_clamp_cycles_ = 0;
    ClassSched class_sched_[kMaxQuantumClasses] = {};

    SpscRing<Request> dispatch_ring_;
    SpscRing<Response> tx_ring_;
    WorkerStatsLine stats_;

    std::vector<std::unique_ptr<Task>> tasks_;
    std::vector<Task *> idle_;
    /** PS/FCFS run queue: plain ring rotation (pop front, push back). */
    std::deque<Task *> busy_;
    /** LAS run queue: binary min-heap on (quanta, admit_seq). Only one
     *  of busy_ / las_heap_ is populated, per cfg_.work. */
    std::vector<Task *> las_heap_;
    uint64_t admit_seq_next_ = 0;
    std::atomic<size_t> busy_count_{0};

    // Backpressure / shutdown accounting. Always recorded (unlike the
    // TQ_TELEMETRY counters): every touch is on the cold overflow or
    // shutdown path, never on the per-job fast path.
    std::atomic<uint64_t> tx_full_spins_{0};
    std::atomic<uint64_t> dropped_responses_{0};
    std::atomic<uint64_t> abandoned_jobs_{0};
    /** Starvation-guard force-promotions (cold path; always recorded
     *  so the guard is observable in -DTQ_TELEMETRY=OFF builds too). */
    std::atomic<uint64_t> starvation_promotions_{0};
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_WORKER_H
