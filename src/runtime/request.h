/**
 * @file
 * Request/response types flowing through the real TQ runtime.
 *
 * In the paper these are UDP packets moved by DPDK; here they are small
 * PODs moved through the same lock-free ring structure (DESIGN.md
 * substitution table).
 */
#ifndef TQ_RUNTIME_REQUEST_H
#define TQ_RUNTIME_REQUEST_H

#include <cstdint>

#include "common/cycles.h"

namespace tq::runtime {

/** One incoming request. */
struct Request
{
    uint64_t id = 0;           ///< client-assigned request id
    Cycles gen_cycles = 0;     ///< client send timestamp
    Cycles arrival_cycles = 0; ///< stamped when the dispatcher receives it
    Cycles dispatch_cycles = 0;///< stamped when the dispatcher hands the
                               ///< job to a worker (telemetry builds;
                               ///< 0 otherwise)
    int job_class = 0;         ///< workload class (short/long, GET/SCAN...).
                               ///< Also the per-class quantum key: when
                               ///< RuntimeConfig::class_quantum_us is set
                               ///< the worker resolves this job's slice
                               ///< budget from it once, at admission
                               ///< (runtime/quantum.h; classes >= 7
                               ///< share slot 7)
    uint64_t payload = 0;      ///< class-specific argument (key, ns, ...)

    /**
     * Scatter-gather width: the dispatcher expands a request with
     * fanout k into k shard copies, each placed independently (one
     * pick+push per shard). 1 — the default — is the classic
     * single-shard path. The client gathers the shard responses and
     * completes the logical request on the last one
     * (runtime/fanout.h).
     */
    uint32_t fanout = 1;
    uint32_t shard = 0;        ///< shard index in [0, fanout), set by
                               ///< the dispatcher during expansion
};

/** One completed response, emitted directly by the worker. */
struct Response
{
    uint64_t id = 0;
    Cycles gen_cycles = 0;
    Cycles arrival_cycles = 0;
    Cycles done_cycles = 0;    ///< stamped at completion on the worker
    int job_class = 0;
    int worker = -1;           ///< core that executed the job
    uint64_t result = 0;       ///< handler's output (checksum etc.)
    uint32_t fanout = 1;       ///< copied from the request
    uint32_t shard = 0;        ///< which shard this response answers

    /** Server-side sojourn (dispatcher receive -> completion), ns. */
    double
    sojourn_ns() const
    {
        return cycles_to_ns(done_cycles - arrival_cycles);
    }

    /** End-to-end latency (client send -> completion), ns. */
    double
    e2e_ns() const
    {
        return cycles_to_ns(done_cycles - gen_cycles);
    }
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_REQUEST_H
