/**
 * @file
 * The per-class quantum table shared between the dispatcher-tier
 * controller and the worker schedulers (DESIGN.md §4i).
 *
 * `RuntimeConfig::class_quantum_us` keys quanta by `Request::job_class`.
 * The resolved cycle budgets live in one ClassQuantumTable owned by the
 * Runtime: the adaptive controller (runtime/quantum_controller.h) is the
 * only writer after construction, and each worker loads exactly one
 * entry per admitted job — the *resolution point* is admission, so a
 * controller update applies to jobs admitted after the store, never to
 * a job mid-service (its Task carries the budget it was admitted with).
 *
 * Layout note: the eight entries share cache lines deliberately. The
 * writer ticks at snapshot rate (hertz), the readers load once per
 * admission; there is no per-quantum or per-probe access, so sharing
 * costs nothing and keeps the table a single line in the common case
 * (docs/cache_line_analysis.md covers the contrast with the per-quantum
 * WorkerStatsLine traffic).
 */
#ifndef TQ_RUNTIME_QUANTUM_H
#define TQ_RUNTIME_QUANTUM_H

#include <atomic>

#include "common/cycles.h"

namespace tq::runtime {

/** Job classes with distinct quanta. `job_class` values at or beyond
 *  the limit clamp into the last slot (they still schedule; they just
 *  share a quantum), matching telemetry's per-class instrument bound. */
inline constexpr int kMaxQuantumClasses = 8;

/** Atomic per-class quantum cycle budgets (single writer after
 *  construction: the adaptive controller; readers: workers, one
 *  relaxed load per admission). */
class ClassQuantumTable
{
  public:
    /** Every slot starts at @p default_cycles (the fixed quantum). */
    explicit ClassQuantumTable(Cycles default_cycles)
    {
        for (auto &c : cycles_)
            c.store(default_cycles, std::memory_order_relaxed);
    }

    /** Table slot for a request's job_class (clamped, never negative). */
    static int
    slot_of(int job_class)
    {
        if (job_class < 0)
            return 0;
        return job_class < kMaxQuantumClasses ? job_class
                                              : kMaxQuantumClasses - 1;
    }

    /** The quantum budget for @p slot (relaxed; admission-time load). */
    Cycles
    load(int slot) const
    {
        return cycles_[static_cast<size_t>(slot)].load(
            std::memory_order_relaxed);
    }

    /** Install a new budget for @p slot (controller only). */
    void
    store(int slot, Cycles cycles)
    {
        cycles_[static_cast<size_t>(slot)].store(cycles,
                                                 std::memory_order_relaxed);
    }

  private:
    std::atomic<Cycles> cycles_[kMaxQuantumClasses];
};

} // namespace tq::runtime

#endif // TQ_RUNTIME_QUANTUM_H
