#include "coro/stack.h"

#include <sys/mman.h>
#include <unistd.h>

#include <utility>

#include "common/check.h"

namespace tq {

namespace {

size_t
page_size()
{
    static const size_t sz = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    return sz;
}

size_t
round_up_pages(size_t bytes)
{
    const size_t ps = page_size();
    return (bytes + ps - 1) / ps * ps;
}

} // namespace

Stack::Stack(size_t size)
{
    TQ_CHECK(size > 0);
    size_ = round_up_pages(size);
    map_size_ = size_ + page_size(); // + guard page
    map_ = mmap(nullptr, map_size_, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    TQ_CHECK(map_ != MAP_FAILED);
    // Guard page at the low end: stacks grow downward.
    TQ_CHECK(mprotect(map_, page_size(), PROT_NONE) == 0);
    base_ = static_cast<char *>(map_) + page_size();
}

Stack::~Stack()
{
    release();
}

Stack::Stack(Stack &&other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      map_size_(std::exchange(other.map_size_, 0))
{
}

Stack &
Stack::operator=(Stack &&other) noexcept
{
    if (this != &other) {
        release();
        map_ = std::exchange(other.map_, nullptr);
        base_ = std::exchange(other.base_, nullptr);
        size_ = std::exchange(other.size_, 0);
        map_size_ = std::exchange(other.map_size_, 0);
    }
    return *this;
}

void
Stack::release() noexcept
{
    if (map_) {
        munmap(map_, map_size_);
        map_ = nullptr;
    }
}

Stack
StackPool::take()
{
    if (free_.empty())
        return Stack(stack_size_);
    Stack s = std::move(free_.back());
    free_.pop_back();
    return s;
}

void
StackPool::put(Stack stack)
{
    free_.push_back(std::move(stack));
}

} // namespace tq
