/**
 * @file
 * Raw user-space execution-context switching.
 *
 * This is the mechanism behind the paper's "cheap coroutine yields"
 * (section 3.1): a switch saves only the SysV callee-saved registers and
 * the FP control words, swaps stack pointers, and returns — no system
 * call, no signal-mask save, no page-table change. On x86-64 the switch
 * is ~15 instructions, giving the tens-of-nanoseconds yield cost the
 * paper relies on.
 */
#ifndef TQ_CORO_CONTEXT_H
#define TQ_CORO_CONTEXT_H

#include <cstddef>

extern "C" {

/**
 * Switch from the current context to @p to_sp.
 *
 * The current context's suspension point (its stack pointer after saving
 * registers) is stored through @p from_sp before the switch. @p arg is
 * delivered to the resumed context: as the return value of the
 * tq_context_jump call it is resuming from, or as the argument of the
 * entry function on first entry.
 *
 * @return the @p arg value passed by whichever context later jumps back
 *     into this one.
 */
void *tq_context_jump(void **from_sp, void *to_sp, void *arg);

} // extern "C"

namespace tq {

/** Entry function run on a fresh context; must never return. */
using ContextEntry = void (*)(void *arg);

/**
 * Prepare a fresh, never-run context on the given stack.
 *
 * @param stack_base lowest address of the stack region.
 * @param stack_size size of the region in bytes.
 * @param entry function invoked (with the first jump's arg) on first entry.
 * @return the stack-pointer cookie to pass to tq_context_jump as @p to_sp.
 */
void *make_context(void *stack_base, size_t stack_size, ContextEntry entry);

} // namespace tq

#endif // TQ_CORO_CONTEXT_H
