#include "coro/coroutine.h"

#include <cstdint>
#include <cstring>

#include "common/check.h"

namespace tq {

namespace {

/// Coroutine executing on the current thread (nullptr in native context).
thread_local Coroutine *tl_current = nullptr;

} // namespace

#if defined(__x86_64__)

extern "C" void tq_context_trampoline();

void *
make_context(void *stack_base, size_t stack_size, ContextEntry entry)
{
    // See context_x86_64.S for the frame layout being built here.
    uintptr_t top = reinterpret_cast<uintptr_t>(stack_base) + stack_size;
    top &= ~uintptr_t{15}; // 16-byte align the stack top

    uint64_t *frame = reinterpret_cast<uint64_t *>(top) - 9;
    // frame[0]: mxcsr / x87 cw — capture the current thread's settings.
    uint32_t mxcsr;
    uint16_t fcw;
    asm volatile("stmxcsr %0" : "=m"(mxcsr));
    asm volatile("fnstcw %0" : "=m"(fcw));
    std::memcpy(reinterpret_cast<char *>(frame), &mxcsr, sizeof(mxcsr));
    std::memcpy(reinterpret_cast<char *>(frame) + 4, &fcw, sizeof(fcw));
    frame[1] = 0;                                       // r15
    frame[2] = 0;                                       // r14
    frame[3] = 0;                                       // r13
    frame[4] = reinterpret_cast<uint64_t>(entry);       // r12
    frame[5] = 0;                                       // rbx
    frame[6] = 0;                                       // rbp
    frame[7] = reinterpret_cast<uint64_t>(&tq_context_trampoline); // rip
    frame[8] = 0;                                       // terminator
    return frame;
}

#endif // __x86_64__

Coroutine::Coroutine(Body body, Stack stack)
    : stack_(std::move(stack)), body_(std::move(body))
{
    TQ_CHECK(body_);
    self_sp_ = make_context(stack_.base(), stack_.size(), &Coroutine::entry);
}

void
Coroutine::resume()
{
    TQ_CHECK(!done_);
    TQ_CHECK(!running_);
    running_ = true;
    started_ = true;
    Coroutine *const prev = tl_current;
    tl_current = this;
    tq_context_jump(&caller_sp_, self_sp_, this);
    tl_current = prev;
    running_ = false;
}

void
Coroutine::yield()
{
    TQ_CHECK(running_);
    TQ_CHECK(tl_current == this);
    tq_context_jump(&self_sp_, caller_sp_, this);
}

void
Coroutine::reset(Body body)
{
    TQ_CHECK(done_ || !started_);
    TQ_CHECK(!running_);
    TQ_CHECK(body);
    body_ = std::move(body);
    started_ = false;
    done_ = false;
    self_sp_ = make_context(stack_.base(), stack_.size(), &Coroutine::entry);
}

Coroutine *
Coroutine::current()
{
    return tl_current;
}

void
Coroutine::entry(void *self)
{
    static_cast<Coroutine *>(self)->run_body();
    // run_body never returns here; it jumps out after completion.
}

void
Coroutine::run_body()
{
    body_(*this);
    done_ = true;
    // Final switch back to the resumer; this context is never re-entered
    // unless reset() rebuilds it.
    tq_context_jump(&self_sp_, caller_sp_, this);
    TQ_CHECK(false); // unreachable: finished coroutines are not resumed
}

} // namespace tq
