/**
 * @file
 * Guarded coroutine stacks.
 *
 * Each task coroutine gets an mmap'd stack with an inaccessible guard
 * page below it, so a stack overflow faults immediately instead of
 * corrupting a neighbouring coroutine. StackPool recycles stacks because
 * TQ workers construct their task coroutines once and reuse them for the
 * lifetime of the worker (paper section 4).
 */
#ifndef TQ_CORO_STACK_H
#define TQ_CORO_STACK_H

#include <cstddef>
#include <vector>

namespace tq {

/** Default coroutine stack size (excluding the guard page). */
inline constexpr size_t kDefaultStackSize = 64 * 1024;

/** An mmap'd stack region with a PROT_NONE guard page at its base. */
class Stack
{
  public:
    /** Allocate a stack of @p size usable bytes (rounded up to pages). */
    explicit Stack(size_t size = kDefaultStackSize);
    ~Stack();

    Stack(Stack &&other) noexcept;
    Stack &operator=(Stack &&other) noexcept;
    Stack(const Stack &) = delete;
    Stack &operator=(const Stack &) = delete;

    /** Lowest usable address (just above the guard page). */
    void *base() const { return base_; }

    /** Usable size in bytes. */
    size_t size() const { return size_; }

  private:
    void release() noexcept;

    void *map_ = nullptr;   ///< whole mapping including guard page
    void *base_ = nullptr;  ///< usable region start
    size_t size_ = 0;       ///< usable bytes
    size_t map_size_ = 0;   ///< mapped bytes
};

/** Simple freelist of equally-sized stacks. Not thread-safe. */
class StackPool
{
  public:
    explicit StackPool(size_t stack_size = kDefaultStackSize)
        : stack_size_(stack_size)
    {}

    /** Take a stack from the pool, allocating if the pool is empty. */
    Stack take();

    /** Return a stack for reuse. */
    void put(Stack stack);

    /** Number of stacks currently cached. */
    size_t cached() const { return free_.size(); }

  private:
    size_t stack_size_;
    std::vector<Stack> free_;
};

} // namespace tq

#endif // TQ_CORO_STACK_H
