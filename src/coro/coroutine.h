/**
 * @file
 * Stackful coroutines — the execution contexts of forced multitasking.
 *
 * A Coroutine runs a callable on its own guarded stack and can suspend
 * from arbitrarily deep call frames via yield(); resume() continues it
 * from the suspension point. This is the property forced multitasking
 * needs: compiler-inserted probes yield from wherever the job happens to
 * be executing (paper section 3.1).
 *
 * Threading model: a coroutine is owned by one worker thread at a time.
 * resume() is called from the scheduler side, yield() from inside the
 * coroutine; neither is reentrant.
 */
#ifndef TQ_CORO_COROUTINE_H
#define TQ_CORO_COROUTINE_H

#include <functional>
#include <utility>

#include "coro/context.h"
#include "coro/stack.h"

namespace tq {

/** A suspendable execution context running a user callable. */
class Coroutine
{
  public:
    /** Body type; receives the coroutine so it can yield. */
    using Body = std::function<void(Coroutine &)>;

    /**
     * Create a coroutine (not started) around @p body.
     * @param body callable run on the coroutine stack at first resume().
     * @param stack stack to execute on; defaults to a fresh guarded stack.
     */
    explicit Coroutine(Body body, Stack stack = Stack());

    /**
     * Destroying a suspended (unfinished) coroutine is allowed: its stack
     * is discarded without unwinding, so bodies must not rely on local
     * destructors running if abandoned mid-flight. TQ's runtime only
     * destroys idle (finished or never-started) coroutines.
     */
    ~Coroutine() = default;

    Coroutine(const Coroutine &) = delete;
    Coroutine &operator=(const Coroutine &) = delete;

    /**
     * Run the coroutine until its next yield() or until the body returns.
     * Must not be called on a finished coroutine.
     */
    void resume();

    /**
     * Suspend and return control to the resume() caller.
     * Must be called from inside the coroutine body.
     */
    void yield();

    /** True once the body has returned. */
    bool done() const { return done_; }

    /** True between resume() and the matching yield()/completion. */
    bool running() const { return running_; }

    /**
     * Re-arm a finished coroutine with a new body, reusing its stack.
     * This is how TQ workers recycle task coroutines across requests.
     */
    void reset(Body body);

    /**
     * The coroutine currently running on this thread, or nullptr when
     * the thread is in scheduler (native) context. Used by the probe
     * runtime to find the yield target without plumbing pointers through
     * instrumented application code.
     */
    static Coroutine *current();

  private:
    static void entry(void *self);
    void run_body();

    Stack stack_;
    Body body_;
    void *self_sp_ = nullptr;    ///< suspension point of the coroutine
    void *caller_sp_ = nullptr;  ///< suspension point of the resumer
    bool started_ = false;
    bool running_ = false;
    bool done_ = false;
};

} // namespace tq

#endif // TQ_CORO_COROUTINE_H
