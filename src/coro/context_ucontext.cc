/**
 * @file
 * Portable ucontext-based fallback for non-x86-64 targets.
 *
 * Slower than the assembly path (swapcontext saves the signal mask with a
 * system call), but functionally identical, which keeps the library and
 * its tests usable on any POSIX platform.
 */
#include "coro/context.h"

#include <ucontext.h>

#include <cstdint>
#include <new>

#include "common/check.h"

namespace tq {
namespace detail_ucontext {

/** Per-context bookkeeping carved from the top of the context's stack. */
struct UcontextRecord
{
    ucontext_t ctx;
    void *arg = nullptr;
    ContextEntry entry = nullptr;
};

thread_local UcontextRecord tl_native;
thread_local UcontextRecord *tl_current = nullptr;
thread_local UcontextRecord *tl_target = nullptr;

void
ucontext_entry()
{
    // On first entry the resuming jump left our record in tl_target.
    UcontextRecord *rec = tl_target;
    rec->entry(rec->arg);
    TQ_CHECK(false); // entry must never return
}

void *
jump(void **from_sp, void *to_sp, void *arg)
{
    UcontextRecord *self = tl_current ? tl_current : &tl_native;
    auto *target = static_cast<UcontextRecord *>(to_sp);
    *from_sp = self;
    target->arg = arg;
    tl_current = target;
    tl_target = target;
    TQ_CHECK(swapcontext(&self->ctx, &target->ctx) == 0);
    tl_current = self;
    return self->arg;
}

} // namespace detail_ucontext

void *
make_context(void *stack_base, size_t stack_size, ContextEntry entry)
{
    using detail_ucontext::UcontextRecord;
    using detail_ucontext::ucontext_entry;

    // Reserve the record at the (aligned) top of the stack region.
    uintptr_t top = reinterpret_cast<uintptr_t>(stack_base) + stack_size;
    top -= sizeof(UcontextRecord);
    top &= ~uintptr_t{63};
    auto *rec = new (reinterpret_cast<void *>(top)) UcontextRecord();
    rec->entry = entry;
    TQ_CHECK(getcontext(&rec->ctx) == 0);
    rec->ctx.uc_stack.ss_sp = stack_base;
    rec->ctx.uc_stack.ss_size = top - reinterpret_cast<uintptr_t>(stack_base);
    rec->ctx.uc_link = nullptr;
    makecontext(&rec->ctx, reinterpret_cast<void (*)()>(&ucontext_entry), 0);
    return rec;
}

} // namespace tq

extern "C" void *
tq_context_jump(void **from_sp, void *to_sp, void *arg)
{
    return tq::detail_ucontext::jump(from_sp, to_sp, arg);
}
