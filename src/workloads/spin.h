/**
 * @file
 * Calibrated synthetic jobs.
 *
 * The paper's synthetic workloads (Extreme/High Bimodal, Exp(1)) are
 * spin loops of a target duration. spin_for() busy-works for the given
 * time with a TQ probe every iteration (~tens of ns apart), making the
 * synthetic jobs preemptable under forced multitasking exactly like
 * compiler-instrumented application code.
 */
#ifndef TQ_WORKLOADS_SPIN_H
#define TQ_WORKLOADS_SPIN_H

#include "common/cycles.h"
#include "common/units.h"

namespace tq::workloads {

/**
 * Busy-work for approximately @p duration nanoseconds of *service time*
 * on this core, probing for preemption along the way. Time spent
 * preempted (after a probe yields) does not count toward the duration:
 * the function tracks consumed cycles across resumes.
 */
void spin_for(SimNanos duration);

/**
 * Busy-work for an exact number of cycles (the low-level primitive
 * behind spin_for; exposed for calibration benchmarks).
 */
void spin_cycles(Cycles cycles);

} // namespace tq::workloads

#endif // TQ_WORKLOADS_SPIN_H
