#include "workloads/spin.h"

#include "probe/probe.h"

namespace tq::workloads {

namespace {

/** ~20-40ns of ALU work between probes. */
inline uint64_t
work_chunk(uint64_t x)
{
    for (int i = 0; i < 12; ++i)
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x;
}

} // namespace

void
spin_cycles(Cycles cycles)
{
    // Consumed-cycle accounting: count everything the loop does (work,
    // clock reads, probes — all genuine service time), but exclude the
    // time spent preempted. A yield is detected through the probe
    // runtime's yield counter; the iteration it happens in is skipped
    // from the accounting (conservative by one ~40ns chunk).
    ProbeState &ps = probe_state();
    Cycles consumed = 0;
    volatile uint64_t sink = 0;
    uint64_t x = 88172645463325252ULL;
    Cycles last = rdcycles();
    while (consumed < cycles) {
        x = work_chunk(x);
        const uint64_t yields_before = ps.yields;
        tq_probe(); // may yield; time away must not count
        const Cycles now = rdcycles();
        if (ps.yields == yields_before)
            consumed += now - last;
        last = now;
    }
    sink = x;
    (void)sink;
}

void
spin_for(SimNanos duration)
{
    spin_cycles(ns_to_cycles(duration));
}

} // namespace tq::workloads
