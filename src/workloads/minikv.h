/**
 * @file
 * MiniKV — an in-memory ordered key-value store standing in for the
 * paper's RocksDB instance (sections 5.1, 5.5.2).
 *
 * A skiplist memtable (RocksDB's default) with the two operations the
 * paper's workload issues: GET (point lookup, ~1us class) and SCAN
 * (long range iteration, ~hundreds-of-us class). Both operations are
 * instrumented with TQ probes exactly as the paper's compiler pass would
 * instrument them — a probe every few loop iterations — so MiniKV jobs
 * are preemptable under forced multitasking.
 *
 * For the reuse-distance study (Figure 15), an optional trace hook
 * records the address of every node and value touched.
 */
#ifndef TQ_WORKLOADS_MINIKV_H
#define TQ_WORKLOADS_MINIKV_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace tq::workloads {

/**
 * Zipfian hot-key generator for MiniKV request streams (the paper's
 * skewed YCSB-style point-lookup mix).
 *
 * Zipf ranks are popularity order, but a store loaded with sequential
 * keys would then concentrate all hot keys in one skiplist region —
 * unrealistically cache-friendly. The generator therefore scatters
 * ranks over the keyspace with a fixed odd-multiplier hash (a bijection
 * on [0, n) for power-of-two n), so the hot set is spread across the
 * structure while each rank still maps to one stable key.
 */
class ZipfKeyGen
{
  public:
    /**
     * @param num_keys keyspace size; must be a power of two (the rank
     *     scramble is only bijective then).
     * @param s Zipf skew (s = 0 uniform; s ~ 0.99 is the YCSB default).
     */
    ZipfKeyGen(uint64_t num_keys, double s);

    /** Sample a key in [0, num_keys): Zipf rank, then scrambled. */
    uint64_t
    sample_key(Rng &rng) const
    {
        return scramble(zipf_.sample(rng));
    }

    /** The stable key rank @p rank maps to (rank 0 is hottest). */
    uint64_t
    scramble(uint64_t rank) const
    {
        return (rank * kMult) & mask_;
    }

    uint64_t num_keys() const { return zipf_.n(); }
    const Zipf &dist() const { return zipf_; }

  private:
    /** Odd multiplier (from splitmix64's mixer): odd => invertible
     *  mod 2^k, so ranks map 1:1 onto the keyspace. */
    static constexpr uint64_t kMult = 0xbf58476d1ce4e5b9ULL;

    Zipf zipf_;
    uint64_t mask_;
};

/** Ordered in-memory KV store with probed GET/SCAN operations. */
class MiniKV
{
  public:
    static constexpr int kMaxLevel = 16;

    /**
     * @param seed randomness for skiplist tower heights.
     * @param value_size bytes stored per value.
     */
    explicit MiniKV(uint64_t seed = 1, size_t value_size = 100);
    ~MiniKV();

    MiniKV(const MiniKV &) = delete;
    MiniKV &operator=(const MiniKV &) = delete;

    /** Insert or overwrite @p key. Not probed (loading is offline). */
    void put(uint64_t key, std::string_view value);

    /**
     * Point lookup (the paper's ~1.2us GET class at RocksDB scale).
     * Probed: safe to run inside a TQ task coroutine.
     * @return true and fills @p value_out when the key exists.
     */
    bool get(uint64_t key, std::string *value_out) const;

    /**
     * Range scan of up to @p count entries starting at the first key
     * >= @p start_key (the paper's ~675us SCAN class). Probed.
     * @return number of entries visited; @p checksum_out accumulates a
     *     value checksum so the work cannot be optimized away.
     */
    size_t scan(uint64_t start_key, size_t count,
                uint64_t *checksum_out) const;

    size_t size() const { return size_; }

    /**
     * Install a memory-access trace sink: every node/value byte-range
     * touched by subsequent get/scan calls appends its address. Pass
     * nullptr to disable. Not thread-safe with concurrent operations.
     */
    void set_trace(std::vector<uint64_t> *sink) { trace_ = sink; }

    /** Bulk-load @p n keys 0..n-1 with deterministic values. */
    void load_sequential(size_t n);

  private:
    struct Node;

    Node *find_greater_or_equal(uint64_t key, Node **prev) const;
    int random_height();
    void touch(const void *addr) const;

    Node *head_;
    size_t value_size_;
    /** Per-operation state (search key, iterator position) that real
     *  store code re-touches throughout an operation — the source of
     *  intra-op locality the reuse study measures (paper section 5.5). */
    mutable char op_state_[128] = {};
    size_t size_ = 0;
    int max_height_ = 1;
    mutable Rng rng_;
    std::vector<uint64_t> *trace_ = nullptr;
};

} // namespace tq::workloads

#endif // TQ_WORKLOADS_MINIKV_H
