#include "workloads/tpcc.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "probe/probe.h"

namespace tq::workloads {

namespace {

/**
 * Burn @p units of CPU work (~30ns each) with a probe per unit: stands
 * in for the parsing/logging/B-tree work a real OLTP engine does around
 * its row accesses, and sets the Table-1 duration ratios.
 */
uint64_t
burn(int units, uint64_t x)
{
    for (int u = 0; u < units; ++u) {
        for (int i = 0; i < 10; ++i)
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        tq_probe();
    }
    return x;
}

} // namespace

TpccTxn
sample_tpcc_mix(Rng &rng)
{
    const double u = rng.uniform();
    if (u < 0.44)
        return TpccTxn::Payment;
    if (u < 0.48)
        return TpccTxn::OrderStatus;
    if (u < 0.92)
        return TpccTxn::NewOrder;
    if (u < 0.96)
        return TpccTxn::Delivery;
    return TpccTxn::StockLevel;
}

TpccEmulator::TpccEmulator(uint64_t seed)
    : district_ytd_(kDistricts, 0),
      customers_(kDistricts * kCustomersPerDistrict),
      stock_(kItems),
      committed_(5, 0)
{
    Rng rng(seed);
    for (auto &c : customers_)
        c.balance = rng.uniform(-100, 100);
    for (auto &s : stock_)
        s.quantity = static_cast<int32_t>(rng.below(91) + 10);
    // Seed some open orders so Delivery/StockLevel have work on start.
    for (int i = 0; i < 100; ++i) {
        Rng r(seed + 1000 + static_cast<uint64_t>(i));
        do_new_order(r);
    }
    committed_.assign(5, 0);
}

uint64_t
TpccEmulator::run(TpccTxn txn, Rng &rng)
{
    uint64_t result = 0;
    switch (txn) {
      case TpccTxn::Payment:
        result = do_payment(rng);
        break;
      case TpccTxn::OrderStatus:
        result = do_order_status(rng);
        break;
      case TpccTxn::NewOrder:
        result = do_new_order(rng);
        break;
      case TpccTxn::Delivery:
        result = do_delivery(rng);
        break;
      case TpccTxn::StockLevel:
        result = do_stock_level(rng);
        break;
    }
    ++committed_[static_cast<size_t>(txn)];
    return result;
}

uint64_t
TpccEmulator::do_payment(Rng &rng)
{
    const uint32_t d = static_cast<uint32_t>(rng.below(kDistricts));
    const uint32_t c = static_cast<uint32_t>(
        d * kCustomersPerDistrict + rng.below(kCustomersPerDistrict));
    const double amount = rng.uniform(1, 5000);

    warehouse_ytd_ += amount;
    district_ytd_[d] += amount;
    Customer &cust = customers_[c];
    cust.balance -= amount;
    cust.ytd_payment += amount;
    ++cust.payment_count;
    std::memset(cust.data, static_cast<int>(cust.payment_count & 0xff),
                sizeof(cust.data));
    tq_probe();
    // Ratio target: 5.7us class.
    return burn(80, static_cast<uint64_t>(amount));
}

uint64_t
TpccEmulator::do_order_status(Rng &rng)
{
    const uint32_t d = static_cast<uint32_t>(rng.below(kDistricts));
    const uint32_t c = static_cast<uint32_t>(
        d * kCustomersPerDistrict + rng.below(kCustomersPerDistrict));
    uint64_t sum = static_cast<uint64_t>(customers_[c].payment_count);
    // Find this customer's most recent order (reverse scan, probed).
    for (size_t i = orders_.size(); i-- > 0;) {
        tq_probe();
        if (orders_[i].customer == c) {
            for (const auto &line : orders_[i].lines)
                sum += line.item + line.quantity;
            break;
        }
    }
    // Ratio target: 6us class.
    return burn(85, sum);
}

uint64_t
TpccEmulator::do_new_order(Rng &rng)
{
    const uint32_t d = static_cast<uint32_t>(rng.below(kDistricts));
    const uint32_t c = static_cast<uint32_t>(
        d * kCustomersPerDistrict + rng.below(kCustomersPerDistrict));
    Order order;
    order.district = d;
    order.customer = c;
    uint64_t sum = 0;
    const int n_lines = 5 + static_cast<int>(rng.below(11)); // 5..15
    for (int l = 0; l < n_lines; ++l) {
        const uint32_t item = static_cast<uint32_t>(rng.below(kItems));
        Stock &s = stock_[item];
        const uint32_t qty = static_cast<uint32_t>(rng.below(10) + 1);
        if (s.quantity >= static_cast<int32_t>(qty) + 10) {
            s.quantity -= static_cast<int32_t>(qty);
        } else {
            s.quantity += 91 - static_cast<int32_t>(qty);
        }
        ++s.order_count;
        order.lines.push_back(
            OrderLine{item, qty, static_cast<double>(qty) * 10.0});
        sum += s.order_count;
        tq_probe();
    }
    const uint32_t order_id = static_cast<uint32_t>(orders_.size());
    orders_.push_back(std::move(order));
    open_orders_.push_back(order_id);
    // Bound table growth across long benchmark runs.
    if (orders_.size() > 200'000 && open_orders_.size() < 1000)
        compact_orders();
    // Ratio target: 20us class.
    return burn(320, sum);
}

uint64_t
TpccEmulator::do_delivery(Rng &rng)
{
    (void)rng;
    uint64_t sum = 0;
    // Deliver the oldest open order of each district.
    for (uint32_t d = 0; d < kDistricts; ++d) {
        for (size_t i = 0; i < open_orders_.size(); ++i) {
            tq_probe();
            Order &o = orders_[open_orders_[i]];
            if (o.district != d || o.delivered)
                continue;
            o.delivered = true;
            double total = 0;
            for (const auto &line : o.lines) {
                total += line.amount;
                tq_probe();
            }
            customers_[o.customer].balance += total;
            sum += o.lines.size();
            open_orders_.erase(open_orders_.begin() +
                               static_cast<ptrdiff_t>(i));
            break;
        }
    }
    // Ratio target: 88us class.
    return burn(1500, sum);
}

uint64_t
TpccEmulator::do_stock_level(Rng &rng)
{
    (void)rng;
    uint64_t low = 0;
    // Examine the lines of the most recent 20 orders.
    const size_t start = orders_.size() > 20 ? orders_.size() - 20 : 0;
    for (size_t i = start; i < orders_.size(); ++i) {
        for (const auto &line : orders_[i].lines) {
            if (stock_[line.item].quantity < 15)
                ++low;
            tq_probe();
        }
    }
    // Ratio target: 100us class.
    return burn(1700, low);
}

void
TpccEmulator::compact_orders()
{
    // Drop delivered orders; remap open order ids.
    std::vector<Order> kept;
    std::vector<uint32_t> remap(orders_.size(), ~0u);
    kept.reserve(open_orders_.size() + 1024);
    for (size_t i = 0; i < orders_.size(); ++i) {
        if (!orders_[i].delivered) {
            remap[i] = static_cast<uint32_t>(kept.size());
            kept.push_back(std::move(orders_[i]));
        }
    }
    for (auto &id : open_orders_)
        id = remap[id];
    orders_ = std::move(kept);
}

} // namespace tq::workloads
