#include "workloads/minikv.h"

#include <cstring>
#include <new>

#include "common/check.h"
#include "probe/probe.h"

namespace tq::workloads {

ZipfKeyGen::ZipfKeyGen(uint64_t num_keys, double s)
    : zipf_(num_keys, s), mask_(num_keys - 1)
{
    TQ_CHECK(num_keys > 0 && (num_keys & (num_keys - 1)) == 0);
}

/**
 * Skiplist node: key, value pointer, and a variable-height tower of
 * forward pointers, allocated in one block like LevelDB/RocksDB do.
 */
struct MiniKV::Node
{
    uint64_t key;
    char *value;
    int height;
    Node *next[1]; // over-allocated to `height`

    static Node *
    make(uint64_t key, int height)
    {
        const size_t bytes =
            sizeof(Node) + sizeof(Node *) * static_cast<size_t>(height - 1);
        void *mem = ::operator new(bytes);
        Node *n = static_cast<Node *>(mem);
        n->key = key;
        n->value = nullptr;
        n->height = height;
        for (int i = 0; i < height; ++i)
            n->next[i] = nullptr;
        return n;
    }
};

MiniKV::MiniKV(uint64_t seed, size_t value_size)
    : value_size_(value_size), rng_(seed)
{
    head_ = Node::make(0, kMaxLevel);
}

MiniKV::~MiniKV()
{
    Node *n = head_;
    while (n) {
        Node *next = n->next[0];
        delete[] n->value;
        ::operator delete(n);
        n = next;
    }
}

void
MiniKV::touch(const void *addr) const
{
    if (trace_)
        trace_->push_back(reinterpret_cast<uint64_t>(addr));
}

int
MiniKV::random_height()
{
    // Geometric heights with p = 1/4 (RocksDB's kBranching = 4).
    int h = 1;
    while (h < kMaxLevel && rng_.below(4) == 0)
        ++h;
    return h;
}

MiniKV::Node *
MiniKV::find_greater_or_equal(uint64_t key, Node **prev) const
{
    Node *x = head_;
    int level = max_height_ - 1;
    int steps = 0;
    for (;;) {
        touch(x);
        Node *next = x->next[level];
        if (next && next->key < key) {
            x = next;
        } else {
            // Level change: the comparator re-reads the search key and
            // the current node is re-examined at the next level down —
            // the intra-op reuse the cache study measures.
            touch(op_state_);
            if (prev)
                prev[level] = x;
            if (level == 0)
                return next;
            --level;
        }
        // Probe site: the paper's pass bounds probe-free loop stretches;
        // a skiplist descent step is a handful of instructions, so one
        // probe every 8 steps approximates its placement density.
        if ((++steps & 7) == 0)
            tq_probe();
    }
}

void
MiniKV::put(uint64_t key, std::string_view value)
{
    Node *prev[kMaxLevel];
    for (int i = 0; i < kMaxLevel; ++i)
        prev[i] = head_;
    Node *existing = find_greater_or_equal(key, prev);
    if (existing && existing->key == key) {
        const size_t n = std::min(value.size(), value_size_);
        std::memcpy(existing->value, value.data(), n);
        return;
    }
    const int height = random_height();
    if (height > max_height_) {
        for (int i = max_height_; i < height; ++i)
            prev[i] = head_;
        max_height_ = height;
    }
    Node *node = Node::make(key, height);
    node->value = new char[value_size_]();
    std::memcpy(node->value, value.data(),
                std::min(value.size(), value_size_));
    for (int i = 0; i < height; ++i) {
        node->next[i] = prev[i]->next[i];
        prev[i]->next[i] = node;
    }
    ++size_;
}

bool
MiniKV::get(uint64_t key, std::string *value_out) const
{
    const Node *n = find_greater_or_equal(key, nullptr);
    if (!n || n->key != key)
        return false;
    touch(n->value);
    if (value_out)
        value_out->assign(n->value, value_size_);
    tq_probe();
    return true;
}

size_t
MiniKV::scan(uint64_t start_key, size_t count, uint64_t *checksum_out) const
{
    const Node *n = find_greater_or_equal(start_key, nullptr);
    size_t visited = 0;
    uint64_t checksum = 0;
    while (n && visited < count) {
        touch(n);
        touch(op_state_ + 64); // iterator state updated per entry
        // Aggregate over the value so the scan does real memory work
        // (every value cache line is touched).
        for (size_t i = 0; i + 8 <= value_size_; i += 8) {
            uint64_t word;
            std::memcpy(&word, n->value + i, 8);
            checksum = checksum * 31 + word;
            if (i % 64 == 0)
                touch(n->value + i);
        }
        ++visited;
        n = n->next[0];
        // One probe per visited entry: entries are ~100ns of work, well
        // within any supported quantum bound.
        tq_probe();
    }
    if (checksum_out)
        *checksum_out = checksum;
    return visited;
}

void
MiniKV::load_sequential(size_t n)
{
    std::string value(value_size_, 'v');
    for (size_t i = 0; i < n; ++i) {
        // Deterministic, key-dependent value bytes.
        value[0] = static_cast<char>('a' + i % 26);
        put(i, value);
    }
}

} // namespace tq::workloads
