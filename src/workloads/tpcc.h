/**
 * @file
 * TPC-C transaction emulator (paper Table 1's multi-modal OLTP
 * workload).
 *
 * An in-memory OLTP engine scaled down to microsecond transactions: one
 * warehouse with districts, customers, items, stock, orders and order
 * lines in flat tables. The five transaction types perform their
 * representative row reads/updates with TQ probes inside every loop, so
 * transactions are preemptable mid-flight. Work per type is sized so
 * the *ratios* of service times track Table 1
 * (Payment 5.7 : OrderStatus 6 : NewOrder 20 : Delivery 88 :
 * StockLevel 100); absolute times depend on the host.
 */
#ifndef TQ_WORKLOADS_TPCC_H
#define TQ_WORKLOADS_TPCC_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tq::workloads {

/** TPC-C transaction types of paper Table 1. */
enum class TpccTxn {
    Payment,
    OrderStatus,
    NewOrder,
    Delivery,
    StockLevel,
};

/** Table-1 mix: Payment 44%, OrderStatus 4%, NewOrder 44%, Delivery 4%,
 *  StockLevel 4%. */
TpccTxn sample_tpcc_mix(Rng &rng);

/** Scaled-down single-warehouse TPC-C engine. */
class TpccEmulator
{
  public:
    static constexpr int kDistricts = 10;
    static constexpr int kCustomersPerDistrict = 300;
    static constexpr int kItems = 2000;

    explicit TpccEmulator(uint64_t seed = 1);

    /**
     * Execute one transaction; returns a result checksum (forces the
     * work to be real). Probed: safe inside TQ task coroutines.
     */
    uint64_t run(TpccTxn txn, Rng &rng);

    /** Number of open orders (grows with NewOrder, shrinks w/ Delivery). */
    size_t open_orders() const { return open_orders_.size(); }

    /** Total committed transactions per type, indexed by TpccTxn. */
    const std::vector<uint64_t> &committed() const { return committed_; }

  private:
    struct Customer
    {
        double balance = 0;
        double ytd_payment = 0;
        uint32_t payment_count = 0;
        char data[64] = {};
    };

    struct Stock
    {
        int32_t quantity = 50;
        uint32_t order_count = 0;
        char dist_info[32] = {};
    };

    struct OrderLine
    {
        uint32_t item = 0;
        uint32_t quantity = 0;
        double amount = 0;
    };

    struct Order
    {
        uint32_t district = 0;
        uint32_t customer = 0;
        bool delivered = false;
        std::vector<OrderLine> lines;
    };

    uint64_t do_payment(Rng &rng);
    uint64_t do_order_status(Rng &rng);
    uint64_t do_new_order(Rng &rng);
    uint64_t do_delivery(Rng &rng);
    uint64_t do_stock_level(Rng &rng);
    void compact_orders();

    double warehouse_ytd_ = 0;
    std::vector<double> district_ytd_;
    std::vector<Customer> customers_; ///< district-major
    std::vector<Stock> stock_;
    std::vector<Order> orders_;
    std::vector<uint32_t> open_orders_; ///< undelivered order ids
    std::vector<uint64_t> committed_;
};

} // namespace tq::workloads

#endif // TQ_WORKLOADS_TPCC_H
