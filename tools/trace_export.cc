/**
 * @file
 * trace_export — run a MiniKV GET/SCAN burst on the real TQ runtime and
 * export the recorded quantum-event trace as Chrome trace_event JSON.
 *
 * The scenario mirrors examples/kv_server: one multi-millisecond SCAN
 * followed by a wave of GETs on a small worker pool, so the exported
 * timeline shows forced multitasking slicing the SCAN into tiny quanta
 * while GETs overtake it. Load the output in chrome://tracing or
 * https://ui.perfetto.dev.
 *
 * Usage:
 *   trace_export [-o trace.json] [--workers N] [--quantum-us Q]
 *                [--gets N] [--scan-len N]
 *
 * The telemetry snapshot (dispatch / queueing / service / preemption
 * decomposition) is printed to stdout alongside the trace. See
 * OBSERVABILITY.md for a worked walkthrough of the output.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "probe/probe.h"
#include "runtime/runtime.h"
#include "telemetry/telemetry.h"
#include "workloads/minikv.h"

using namespace tq;

namespace {

constexpr uint64_t kKeys = 50'000;

struct Options
{
    const char *out_path = "trace.json";
    int workers = 2;
    double quantum_us = 2.0;
    int gets = 40;
    size_t scan_len = 3'000;
};

/** Per-thread MiniKV shard, guarded against mid-init preemption. */
workloads::MiniKV &
shard()
{
    thread_local auto kv = [] {
        PreemptGuard guard;
        auto fresh = std::make_unique<workloads::MiniKV>(42, 100);
        fresh->load_sequential(kKeys);
        return fresh;
    }();
    return *kv;
}

Options
parse_args(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const auto need_value = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "-o"))
            opt.out_path = need_value("-o");
        else if (!std::strcmp(argv[i], "--workers"))
            opt.workers = std::atoi(need_value("--workers"));
        else if (!std::strcmp(argv[i], "--quantum-us"))
            opt.quantum_us = std::atof(need_value("--quantum-us"));
        else if (!std::strcmp(argv[i], "--gets"))
            opt.gets = std::atoi(need_value("--gets"));
        else if (!std::strcmp(argv[i], "--scan-len"))
            opt.scan_len =
                static_cast<size_t>(std::atoll(need_value("--scan-len")));
        else {
            std::fprintf(stderr,
                         "usage: trace_export [-o FILE] [--workers N] "
                         "[--quantum-us Q] [--gets N] [--scan-len N]\n");
            std::exit(2);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse_args(argc, argv);
    if (!telemetry::kEnabled) {
        std::fprintf(stderr,
                     "trace_export: this build was configured with "
                     "-DTQ_TELEMETRY=OFF; nothing to record.\n");
        return 1;
    }

    runtime::RuntimeConfig cfg;
    cfg.num_workers = opt.workers;
    cfg.quantum_us = opt.quantum_us;

    const size_t scan_len = opt.scan_len;
    runtime::Runtime rt(cfg, [scan_len](const runtime::Request &req) {
        uint64_t checksum = 0;
        if (req.job_class == 0) {
            std::string value;
            shard().get(req.payload % kKeys, &value);
            checksum = value.empty() ? 0 : static_cast<uint64_t>(value[0]);
        } else {
            shard().scan(req.payload % kKeys, scan_len, &checksum);
        }
        return checksum;
    });
    rt.start();

    auto make = [](uint64_t id, int cls, uint64_t payload) {
        runtime::Request r;
        r.id = id;
        r.gen_cycles = rdcycles();
        r.job_class = cls;
        r.payload = payload;
        return r;
    };
    const uint64_t scan_id = 1'000'000;
    rt.submit(make(scan_id, 1, 0));
    for (int i = 0; i < opt.gets; ++i)
        rt.submit(make(static_cast<uint64_t>(i), 0,
                       static_cast<uint64_t>(i) * 2654435761u));

    std::vector<runtime::Response> responses;
    while (responses.size() < static_cast<size_t>(opt.gets) + 1) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    rt.stop();

    const telemetry::MetricsSnapshot snap = rt.telemetry_snapshot();
    std::vector<telemetry::TraceEvent> events;
    rt.drain_trace(events);

    std::ofstream out(opt.out_path);
    if (!out) {
        std::fprintf(stderr, "trace_export: cannot open %s\n",
                     opt.out_path);
        return 1;
    }
    telemetry::write_chrome_trace(out, events);

    std::printf("# MiniKV burst: 1 SCAN (%zu entries) + %d GETs, "
                "%d worker(s), %.1fus quanta\n",
                scan_len, opt.gets, opt.workers, opt.quantum_us);
    std::printf("%s", snap.to_string().c_str());
    std::printf("wrote %zu trace events to %s (load in chrome://tracing "
                "or ui.perfetto.dev)\n",
                events.size(), opt.out_path);
    return 0;
}
