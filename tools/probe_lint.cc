/**
 * @file
 * probe_lint: static placement linter for the instrumentation passes.
 *
 * Instruments every built-in Table-3 program with each technique at a
 * sweep of placement bounds, runs the static probe-bound verifier
 * (compiler/verifier.h) on the result, and reports the proven
 * worst-case probe-free stretch for each combination. Exits nonzero
 * if any placement fails verification — unbounded probe-free cycle,
 * structural breakage, or a proven bound above the configured budget.
 *
 * Usage:
 *   probe_lint [--json] [--bounds N,N,...] [--passes tq,ci,cicycles]
 *              [--programs name,...] [--limit-multiple X]
 *              [--optimize] [--budget N] [--list]
 *
 *   --json            machine-readable output (one JSON document)
 *   --bounds          placement bounds to sweep (default 100,400,1600)
 *   --passes          techniques to lint (default all three)
 *   --programs        comma-separated program names (default all)
 *   --optimize        additionally run the verify-guided placement
 *                     optimizer (compiler/optimizer.h) on each
 *                     placement and report the refined probe count and
 *                     proven bound; exits nonzero if any optimized
 *                     placement fails verification
 *   --budget N        stretch budget (instructions) the optimized
 *                     placement must prove (default 0 = each
 *                     placement's own proven bound — never loosen);
 *                     only meaningful with --optimize
 *   --limit-multiple  fail when proven bound > X * placement bound
 *                     (default 0 = disabled: TQ's per-frame loop-guard
 *                     counters compound across call boundaries, so the
 *                     proven worst case of a call-in-loop placement is
 *                     ~guard-period x callee-silent-path — measured up
 *                     to ~4000x bound on the ocean programs. Budgets
 *                     are an opt-in policy, not a soundness check.)
 *   --list            print available program names and exit
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compiler/optimizer.h"
#include "compiler/passes.h"
#include "compiler/verifier.h"
#include "progs/programs.h"

namespace {

using tq::compiler::Module;
using tq::compiler::PassConfig;
using tq::compiler::Severity;
using tq::compiler::VerifyConfig;
using tq::compiler::VerifyResult;

struct Options
{
    bool json = false;
    bool list = false;
    std::vector<int> bounds = {100, 400, 1600};
    std::vector<std::string> passes = {"tq", "ci", "cicycles"};
    std::vector<std::string> programs; // empty = all
    double limit_multiple = 0.0;
    bool optimize = false;
    uint64_t budget = 0;
};

std::vector<std::string>
split(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            if (start < s.size())
                out.push_back(s.substr(start));
            break;
        }
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

[[noreturn]] void
usage_error(const char *msg)
{
    std::fprintf(stderr, "probe_lint: %s\n", msg);
    std::fprintf(stderr,
                 "usage: probe_lint [--json] [--bounds N,N,...] "
                 "[--passes tq,ci,cicycles] [--programs name,...] "
                 "[--limit-multiple X] [--optimize] [--budget N] "
                 "[--list]\n");
    std::exit(2);
}

Options
parse_args(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage_error(("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--bounds") {
            opt.bounds.clear();
            for (const auto &tok : split(value())) {
                const int b = std::atoi(tok.c_str());
                if (b <= 0)
                    usage_error("bounds must be positive integers");
                opt.bounds.push_back(b);
            }
            if (opt.bounds.empty())
                usage_error("empty --bounds");
        } else if (arg == "--passes") {
            opt.passes = split(value());
            for (const auto &p : opt.passes)
                if (p != "tq" && p != "ci" && p != "cicycles")
                    usage_error("unknown pass (want tq, ci, cicycles)");
            if (opt.passes.empty())
                usage_error("empty --passes");
        } else if (arg == "--programs") {
            opt.programs = split(value());
        } else if (arg == "--optimize") {
            opt.optimize = true;
        } else if (arg == "--budget" || arg.rfind("--budget=", 0) == 0) {
            const std::string v =
                arg == "--budget" ? value() : arg.substr(9);
            const long long b = std::atoll(v.c_str());
            if (b <= 0)
                usage_error("--budget must be a positive integer");
            opt.budget = static_cast<uint64_t>(b);
        } else if (arg == "--limit-multiple") {
            opt.limit_multiple = std::atof(value().c_str());
            if (opt.limit_multiple < 0)
                usage_error("--limit-multiple must be >= 0");
        } else {
            usage_error(("unknown argument: " + arg).c_str());
        }
    }
    return opt;
}

void
apply_pass(Module &m, const std::string &pass, const PassConfig &pcfg)
{
    if (pass == "tq")
        run_tq_pass(m, pcfg);
    else if (pass == "ci")
        run_ci_pass(m, pcfg);
    else
        run_ci_cycles_pass(m, pcfg);
}

std::string
json_escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

struct Row
{
    std::string program;
    std::string pass;
    int bound = 0;
    int probes = 0;
    uint64_t static_bound = 0;
    bool ok = false;
    int errors = 0;
    int warnings = 0;
    std::vector<std::string> diags;

    // --optimize results.
    bool opt_run = false;
    bool opt_ok = false;
    int opt_probes = 0;
    uint64_t opt_bound = 0;
    int opt_deleted = 0;
    int opt_hoisted = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse_args(argc, argv);

    const std::vector<std::string> &all = tq::progs::program_names();
    if (opt.list) {
        for (const auto &name : all)
            std::printf("%s\n", name.c_str());
        return 0;
    }

    std::vector<std::string> programs =
        opt.programs.empty() ? all : opt.programs;
    for (const auto &p : programs) {
        bool known = false;
        for (const auto &name : all)
            known |= name == p;
        if (!known)
            usage_error(("unknown program: " + p).c_str());
    }

    std::vector<Row> rows;
    bool failed = false;
    for (const auto &prog : programs) {
        const Module base = tq::progs::make_program(prog);
        for (const auto &pass : opt.passes) {
            for (int bound : opt.bounds) {
                PassConfig pcfg;
                pcfg.bound = bound;
                Module m = base;
                apply_pass(m, pass, pcfg);

                VerifyConfig vcfg;
                if (opt.limit_multiple > 0)
                    vcfg.fail_above = static_cast<uint64_t>(
                        opt.limit_multiple * bound);
                const VerifyResult vr = verify_module(m, vcfg);

                Row row;
                row.program = prog;
                row.pass = pass;
                row.bound = bound;
                row.probes = m.probe_count();
                row.static_bound = vr.max_stretch;
                row.ok = vr.ok;
                for (const auto &d : vr.diags) {
                    row.errors += d.severity == Severity::Error;
                    row.warnings += d.severity == Severity::Warning;
                    row.diags.push_back(tq::compiler::to_string(d, m));
                }
                failed |= !vr.ok;

                if (opt.optimize) {
                    // The optimizer re-proves the target after every
                    // move itself; the budget rides in as the target
                    // bound, not as a fail_above error.
                    tq::compiler::OptimizerConfig ocfg;
                    ocfg.target_bound = opt.budget;
                    const tq::compiler::OptimizerResult optr =
                        optimize_placement(m, ocfg);
                    row.opt_run = true;
                    row.opt_ok = optr.ok;
                    row.opt_probes = optr.final_probes;
                    row.opt_bound = optr.final_bound;
                    row.opt_deleted = optr.deleted;
                    row.opt_hoisted = optr.hoisted;
                    failed |= !optr.ok;
                }
                rows.push_back(std::move(row));
            }
        }
    }

    if (opt.json) {
        std::printf("{\n  \"limit_multiple\": %g,\n"
                    "  \"optimize\": %s,\n  \"budget\": %llu,\n"
                    "  \"results\": [\n",
                    opt.limit_multiple, opt.optimize ? "true" : "false",
                    static_cast<unsigned long long>(opt.budget));
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::printf("    {\"program\": \"%s\", \"pass\": \"%s\", "
                        "\"bound\": %d, \"probes\": %d, ",
                        json_escape(r.program).c_str(), r.pass.c_str(),
                        r.bound, r.probes);
            if (r.static_bound == tq::compiler::kUnboundedStretch)
                std::printf("\"static_bound\": null, ");
            else
                std::printf("\"static_bound\": %llu, ",
                            static_cast<unsigned long long>(r.static_bound));
            std::printf("\"ok\": %s, \"errors\": %d, \"warnings\": %d, "
                        "\"diags\": [",
                        r.ok ? "true" : "false", r.errors, r.warnings);
            for (size_t j = 0; j < r.diags.size(); ++j)
                std::printf("%s\"%s\"", j ? ", " : "",
                            json_escape(r.diags[j]).c_str());
            std::printf("]");
            if (r.opt_run) {
                std::printf(", \"opt\": {\"probes\": %d, ", r.opt_probes);
                if (r.opt_bound == tq::compiler::kUnboundedStretch)
                    std::printf("\"bound\": null, ");
                else
                    std::printf("\"bound\": %llu, ",
                                static_cast<unsigned long long>(
                                    r.opt_bound));
                std::printf("\"deleted\": %d, \"hoisted\": %d, "
                            "\"ok\": %s}",
                            r.opt_deleted, r.opt_hoisted,
                            r.opt_ok ? "true" : "false");
            }
            std::printf("}%s\n", i + 1 < rows.size() ? "," : "");
        }
        std::printf("  ],\n  \"ok\": %s\n}\n", failed ? "false" : "true");
    } else {
        if (opt.optimize)
            std::printf("%-22s %-9s %6s %7s %12s %7s %10s %12s  %s\n",
                        "program", "pass", "bound", "probes",
                        "static-bound", "ratio", "opt-probes", "opt-bound",
                        "status");
        else
            std::printf("%-22s %-9s %6s %7s %12s %7s  %s\n", "program",
                        "pass", "bound", "probes", "static-bound", "ratio",
                        "status");
        for (const Row &r : rows) {
            char bound_buf[32];
            char ratio_buf[32];
            if (r.static_bound == tq::compiler::kUnboundedStretch) {
                std::snprintf(bound_buf, sizeof bound_buf, "unbounded");
                std::snprintf(ratio_buf, sizeof ratio_buf, "-");
            } else {
                std::snprintf(bound_buf, sizeof bound_buf, "%llu",
                              static_cast<unsigned long long>(
                                  r.static_bound));
                std::snprintf(ratio_buf, sizeof ratio_buf, "%.2f",
                              static_cast<double>(r.static_bound) /
                                  r.bound);
            }
            const bool row_ok = r.ok && (!r.opt_run || r.opt_ok);
            if (opt.optimize) {
                char opt_bound_buf[32];
                if (r.opt_bound == tq::compiler::kUnboundedStretch)
                    std::snprintf(opt_bound_buf, sizeof opt_bound_buf,
                                  "unbounded");
                else
                    std::snprintf(opt_bound_buf, sizeof opt_bound_buf,
                                  "%llu",
                                  static_cast<unsigned long long>(
                                      r.opt_bound));
                std::printf("%-22s %-9s %6d %7d %12s %7s %10d %12s  %s\n",
                            r.program.c_str(), r.pass.c_str(), r.bound,
                            r.probes, bound_buf, ratio_buf, r.opt_probes,
                            opt_bound_buf, row_ok ? "ok" : "FAIL");
            } else {
                std::printf("%-22s %-9s %6d %7d %12s %7s  %s\n",
                            r.program.c_str(), r.pass.c_str(), r.bound,
                            r.probes, bound_buf, ratio_buf,
                            row_ok ? "ok" : "FAIL");
            }
            if (!r.ok)
                for (const auto &d : r.diags)
                    std::printf("    %s\n", d.c_str());
        }
        std::printf("\n%zu combination%s checked, %s\n", rows.size(),
                    rows.size() == 1 ? "" : "s",
                    failed ? "FAILURES above" : "all placements verified");
    }
    return failed ? 1 : 0;
}
