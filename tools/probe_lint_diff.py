#!/usr/bin/env python3
"""Diff a probe_lint --json run against the checked-in golden baseline.

Usage: probe_lint_diff.py BASELINE.json CURRENT.json

Both files are probe_lint --json documents. Rows are keyed by
(program, pass, bound). The gate fails (exit 1) on:

  - a regression: probe count or proven static bound increased, or a
    previously-ok row now fails verification;
  - a missing row: a (program, pass, bound) combination present in the
    baseline is absent from the current run.

Improvements (fewer probes, tighter bound) and new rows are reported
but do not fail — regenerate the baseline to lock them in:

    ./build/tools/probe_lint --json --bounds 100,400,1600 \\
        > tests/data/probe_lint_baseline.json
"""

import json
import sys


def rows_by_key(doc):
    out = {}
    for r in doc["results"]:
        out[(r["program"], r["pass"], r["bound"])] = r
    return out


def fmt_bound(v):
    return "unbounded" if v is None else str(v)


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baseline = rows_by_key(json.load(f))
    with open(sys.argv[2]) as f:
        current = rows_by_key(json.load(f))

    regressions = []
    improvements = []
    for key, base in sorted(baseline.items()):
        name = "%s/%s/bound=%d" % key
        cur = current.get(key)
        if cur is None:
            regressions.append("%s: missing from current run" % name)
            continue
        if base["ok"] and not cur["ok"]:
            regressions.append("%s: was ok, now fails verification" % name)
        if cur["probes"] > base["probes"]:
            regressions.append(
                "%s: probes %d -> %d"
                % (name, base["probes"], cur["probes"])
            )
        elif cur["probes"] < base["probes"]:
            improvements.append(
                "%s: probes %d -> %d"
                % (name, base["probes"], cur["probes"])
            )
        bb, cb = base["static_bound"], cur["static_bound"]
        # None renders the unbounded sentinel: worse than any number.
        if (bb is not None and cb is None) or (
            bb is not None and cb is not None and cb > bb
        ):
            regressions.append(
                "%s: static bound %s -> %s"
                % (name, fmt_bound(bb), fmt_bound(cb))
            )
        elif cb is not None and (bb is None or cb < bb):
            improvements.append(
                "%s: static bound %s -> %s"
                % (name, fmt_bound(bb), fmt_bound(cb))
            )

    new_rows = sorted(set(current) - set(baseline))

    for line in improvements:
        print("improved: " + line)
    for key in new_rows:
        print("new row (not gated): %s/%s/bound=%d" % key)
    for line in regressions:
        print("REGRESSION: " + line)

    print(
        "%d rows checked: %d regression(s), %d improvement(s), %d new"
        % (len(baseline), len(regressions), len(improvements), len(new_rows))
    )
    if regressions:
        print("probe_lint_diff: FAIL (see REGRESSION lines above)")
        return 1
    if improvements:
        print(
            "probe_lint_diff: ok — improvements found; regenerate "
            "tests/data/probe_lint_baseline.json to lock them in"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
