#!/usr/bin/env python3
"""Check relative markdown links and heading anchors across the repo.

Scans every *.md under the repo root (skipping build trees and generated
API docs), extracts inline links `[text](target)`, and verifies:

  * relative file targets exist (resolved against the linking file);
  * `#fragment` anchors — both same-file (`#section`) and cross-file
    (`other.md#section`) — match a heading in the target file, using
    GitHub's slugification (lowercase, punctuation stripped, spaces to
    hyphens, duplicate slugs suffixed -1, -2, ...).

External links (http/https/mailto) are recorded but not fetched: CI
must stay deterministic and offline. Exit status 0 when every checked
link resolves, 1 otherwise (each failure printed as file:line).

Usage: tools/md_link_check.py [ROOT]   (default: repo root = parent of
this script's directory)
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "build-rel", "build-asan", "build-tsan",
             "api", "__pycache__", ".claude"}

# Inline links/images: [text](target) — tolerates one level of nested
# brackets in the text, stops the target at the first unescaped ')' or
# a space (titles like (file.md "Title") keep only the path part).
LINK_RE = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(\s*<?([^)<>\s]+)>?"
                     r"(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
# Explicit HTML anchors also count as link targets.
HTML_ANCHOR_RE = re.compile(r"<a\s+(?:name|id)=[\"']([^\"']+)[\"']")


def slugify(text):
    """GitHub-style heading slug (good enough for ASCII repos)."""
    # Drop inline code/emphasis markers and links' URL part first.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    out = []
    for ch in text.strip().lower():
        if ch.isalnum():
            out.append(ch)
        elif ch in (" ", "-"):
            out.append("-")
        # every other character (punctuation, quotes, §, …) is dropped
    return "".join(out)


def collect_anchors(path, cache):
    if path in cache:
        return cache[path]
    slugs = set()
    counts = {}
    in_fence = False
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    base = slugify(m.group(2))
                    n = counts.get(base, 0)
                    counts[base] = n + 1
                    slugs.add(base if n == 0 else f"{base}-{n}")
                for a in HTML_ANCHOR_RE.findall(line):
                    slugs.add(a)
    except OSError:
        pass
    cache[path] = slugs
    return slugs


def iter_md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check(root):
    anchor_cache = {}
    failures = []
    checked = external = 0
    for md in iter_md_files(root):
        in_fence = False
        with open(md, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for m in LINK_RE.finditer(line):
                    target = m.group(1)
                    if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                        external += 1  # http/https/mailto: not fetched
                        continue
                    checked += 1
                    path_part, _, frag = target.partition("#")
                    rel = os.path.relpath(md, root)
                    where = f"{rel}:{lineno}"
                    if path_part:
                        dest = os.path.normpath(
                            os.path.join(os.path.dirname(md), path_part))
                        if not os.path.exists(dest):
                            failures.append(
                                f"{where}: broken link `{target}` "
                                f"(no such file {path_part})")
                            continue
                    else:
                        dest = md  # same-file anchor
                    if frag:
                        if os.path.isdir(dest) or not dest.endswith(".md"):
                            continue  # anchors only checked in markdown
                        slugs = collect_anchors(dest, anchor_cache)
                        if frag.lower() not in slugs:
                            failures.append(
                                f"{where}: broken anchor `{target}` "
                                f"(no heading slug `{frag}` in "
                                f"{os.path.relpath(dest, root)})")
    return failures, checked, external


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir))
    failures, checked, external = check(root)
    for f in failures:
        print(f)
    print(f"md_link_check: {checked} relative links checked, "
          f"{external} external skipped, {len(failures)} broken")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
