#!/usr/bin/env python3
"""Plot the TSV series printed by the bench/ binaries.

The figure benches print self-describing tab-separated tables:

    # Figure 1 — ...
    rate_mrps   q0.5us  q1.0us ...
    0.50        1       1
    ...

This script turns one bench's stdout (or a saved file) into a PNG per
table, with log-scaled y axes for latency series. matplotlib is the only
dependency; the benches themselves never need it.

A .json input is treated as a recorded calibration run and dispatched
on its keys: dispatcher_throughput rows (BENCH_dispatch.json) become a
grouped before/after Mrps bar chart plus a speedup series;
event_queue_hold rows (BENCH_sim.json) become legacy-vs-new events/sec
bars over queue size plus the per-bench figure-suite speedup chart;
a scenarios document (BENCH_scenarios.json) becomes baseline-vs-bursty
p999 bars plus the fan-out sojourn curves; a quanta document
(BENCH_quanta.json) becomes the fixed-quantum sweep with per-class and
adaptive reference lines; a compiler document (BENCH_compiler.json)
becomes TQ-vs-TQopt probe-count and proven-bound bar charts.

Usage:
    build/bench/fig01_quantum_slowdown | tools/plot_bench.py -o fig01.png
    tools/plot_bench.py bench_output_fig07.txt -o fig07.png
    tools/plot_bench.py BENCH_dispatch.json -o dispatch.png
    tools/plot_bench.py BENCH_sim.json -o sim_core.png
"""

import argparse
import json
import sys


def cell_value(cell):
    """Numeric value of a table cell, or None. Accepts the benches'
    '2.04x' speedup/scaling suffix; 'sat' and blanks are None."""
    if cell in ("sat", ""):
        return None
    try:
        return float(cell.rstrip("x"))
    except ValueError:
        return None


def parse_tables(lines):
    """Split bench output into (title, header, rows) tables."""
    tables = []
    title = ""
    header = None
    rows = []

    def flush():
        nonlocal header, rows
        if header and rows:
            tables.append((title, header, rows))
        header, rows = None, []

    for line in lines:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("##"):
                flush()
            if not tables or line.startswith("##"):
                title = line.lstrip("# ").strip()
            continue
        cells = line.split("\t")
        if len(cells) < 2:
            continue
        try:
            float(cells[0])
        except ValueError:
            flush()
            header = cells
            continue
        if header:
            rows.append(cells)
    flush()
    return tables


def plot_dispatch_json(path, output):
    """Render BENCH_dispatch.json: hot-path Mrps bars, speedup, and the
    sharded-dispatcher scaling panel when the run recorded one."""
    with open(path) as f:
        data = json.load(f)
    rows = data["dispatcher_throughput"]
    workers = [r["workers"] for r in rows]
    before_mrps = [1e3 / r["before_ns_per_job"] for r in rows]
    after_mrps = [r.get("after_mrps", 1e3 / r["after_ns_per_job"])
                  for r in rows]
    scalar_ns = [r.get("legacy_scalar_ns") for r in rows]
    sharded = data.get("sharded_scaling")

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    ncols = 3 if sharded else 2
    fig, axes = plt.subplots(1, ncols, figsize=(5.5 * ncols, 4.5),
                             squeeze=False)
    ax, ax2 = axes[0][0], axes[0][1]
    xs = range(len(workers))
    width = 0.38
    ax.bar([x - width / 2 for x in xs], before_mrps, width,
           label="batched views (before)")
    ax.bar([x + width / 2 for x in xs], after_mrps, width,
           label="packed view (after)")
    ax.set_xticks(list(xs))
    ax.set_xticklabels([str(w) for w in workers])
    ax.set_xlabel("workers")
    ax.set_ylabel("dispatcher Mrps")
    ax.set_title("dispatcher throughput, one shard", fontsize=9)
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)

    if all(scalar_ns):
        ax2.plot(workers,
                 [s / r["after_ns_per_job"]
                  for s, r in zip(scalar_ns, rows)],
                 marker="o", label="packed vs legacy scalar")
    ax2.axhline(1.5, linestyle="--", alpha=0.5, label="1.5x target")
    ax2.set_xlabel("workers")
    ax2.set_ylabel("speedup (x)")
    ax2.set_ylim(bottom=0)
    ax2.set_title("hot-path speedup vs legacy", fontsize=9)
    ax2.legend(fontsize=8)
    ax2.grid(True, alpha=0.3)

    if sharded:
        ax3 = axes[0][2]
        rt = sharded["runtime_isolated"]
        sim = sharded["sim_capacity_64c_0p5us_slo10"]
        shard_counts = [r["shards"] for r in rt]
        xs3 = range(len(shard_counts))
        ax3.bar([x - width / 2 for x in xs3],
                [r["scaling_x"] for r in rt], width,
                label="runtime (isolated per-shard)")
        ax3.bar([x + width / 2 for x in xs3],
                [r["scaling_x"] for r in sim], width,
                label="sim cluster capacity")
        for x, r in zip(xs3, sim):
            ax3.annotate(f'{r["max_mrps"]:.0f} Mrps',
                         (x + width / 2, r["scaling_x"]), ha="center",
                         va="bottom", fontsize=7)
        ax3.plot([x - 0.5 for x in xs3] + [len(shard_counts) - 0.5],
                 [s for s in shard_counts] + [shard_counts[-1]],
                 drawstyle="steps-post", linestyle=":", alpha=0.6,
                 label="linear")
        ax3.set_xticks(list(xs3))
        ax3.set_xticklabels([str(s) for s in shard_counts])
        ax3.set_xlabel("dispatcher shards")
        ax3.set_ylabel("aggregate scaling vs 1 shard (x)")
        ax3.set_title("sharded tier scaling (fig17)", fontsize=9)
        ax3.legend(fontsize=8)
        ax3.grid(True, axis="y", alpha=0.3)

    fig.tight_layout()
    fig.savefig(output, dpi=130)
    print(f"wrote {output}")


def plot_sim_json(path, output):
    """Render BENCH_sim.json: event-queue hold bars + suite speedups."""
    with open(path) as f:
        data = json.load(f)
    hold = data["event_queue_hold"]
    suite = data.get("figure_suite", {}).get("rows", [])

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    ncols = 2 if suite else 1
    fig, axes = plt.subplots(1, ncols, figsize=(6 * ncols, 4.5),
                             squeeze=False)
    ax = axes[0][0]
    xs = range(len(hold))
    width = 0.38
    ax.bar([x - width / 2 for x in xs], [r["legacy_meps"] for r in hold],
           width, label="std::priority_queue (before)")
    ax.bar([x + width / 2 for x in xs], [r["new_meps"] for r in hold],
           width, label="EventQueue (after)")
    for x, r in zip(xs, hold):
        ax.annotate(f'{r["speedup"]:.2f}x', (x + width / 2, r["new_meps"]),
                    ha="center", va="bottom", fontsize=8)
    ax.set_xticks(list(xs))
    ax.set_xticklabels([f'{r["queue_size"]:,}' for r in hold])
    ax.set_xlabel("steady queue size (events)")
    ax.set_ylabel("hold-model Mevents/s")
    ax.set_title("event queue: old vs new machinery", fontsize=9)
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)

    if suite:
        ax2 = axes[0][1]
        ys = range(len(suite))
        ax2.barh(list(ys), [r["speedup"] for r in suite])
        ax2.set_yticks(list(ys))
        ax2.set_yticklabels([r["bench"] for r in suite], fontsize=7)
        ax2.invert_yaxis()
        ax2.axvline(1.0, linestyle="--", alpha=0.5)
        ax2.set_xlabel("wall-clock speedup vs seed (x)")
        cpus = data.get("machine", {}).get("cpus")
        host = f" ({cpus}-CPU host)" if cpus else ""
        ax2.set_title(f"figure-suite wall clock{host}", fontsize=9)
        ax2.grid(True, axis="x", alpha=0.3)

    fig.tight_layout()
    fig.savefig(output, dpi=130)
    print(f"wrote {output}")


def plot_scenarios_json(path, output):
    """Render BENCH_scenarios.json: burst/zipf tail bars + fan-out."""
    with open(path) as f:
        data = json.load(f)
    sc = data["scenarios"]

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(1, 2, figsize=(12, 4.5), squeeze=False)

    ax = axes[0][0]
    pairs = [
        ("burst (sim)", sc["burst_sim"]["poisson_p999_us"],
         sc["burst_sim"]["mmpp_p999_us"]),
        ("burst (runtime)", sc["burst_runtime"]["poisson_p999_us"],
         sc["burst_runtime"]["mmpp_p999_us"]),
        ("minikv (runtime)", sc["zipf_minikv"]["uniform_p999_us"],
         sc["zipf_minikv"]["zipf_p999_us"]),
    ]
    xs = range(len(pairs))
    width = 0.38
    ax.bar([x - width / 2 for x in xs], [p[1] for p in pairs], width,
           label="smooth baseline")
    ax.bar([x + width / 2 for x in xs], [p[2] for p in pairs], width,
           label="bursty / skewed")
    for x, p in zip(xs, pairs):
        if p[1] > 0:
            ax.annotate(f"{p[2] / p[1]:.2f}x", (x + width / 2, p[2]),
                        ha="center", va="bottom", fontsize=8)
    ax.set_xticks(list(xs))
    ax.set_xticklabels([p[0] for p in pairs], fontsize=8)
    ax.set_ylabel("p999 sojourn (us)")
    ax.set_yscale("log")
    ax.set_title("tail under MMPP bursts / Zipf hot keys", fontsize=9)
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)

    ax2 = axes[0][1]
    for key, label in (("fanout_sim", "sim"),
                       ("fanout_runtime", "runtime")):
        rows = sc.get(key, [])
        if rows:
            ax2.plot([r["k"] for r in rows], [r["mean_us"] for r in rows],
                     marker="o", label=f"mean sojourn ({label})")
    ax2.set_xlabel("fan-out k (shards of demand/k)")
    ax2.set_ylabel("mean logical sojourn (us)")
    ax2.set_xscale("log", base=2)
    ax2.set_yscale("log")
    ax2.set_title("scatter-gather fan-out", fontsize=9)
    ax2.legend(fontsize=8)
    ax2.grid(True, alpha=0.3)

    fig.tight_layout()
    fig.savefig(output, dpi=130)
    print(f"wrote {output}")


def plot_quanta_json(path, output):
    """Render BENCH_quanta.json: per workload, the fixed-quantum sweep
    of short-class p999 slowdown with the per-class and adaptive arms
    overlaid as horizontal reference lines."""
    with open(path) as f:
        data = json.load(f)
    loads = data["workloads"]

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(1, len(loads), figsize=(6 * len(loads), 4.5),
                             squeeze=False)
    for ax, (name, w) in zip(axes[0], sorted(loads.items())):
        fixed = [r for r in w["fixed"] if not r["saturated"]]
        ax.plot([r["quantum_us"] for r in fixed],
                [r["short_p999_slowdown"] for r in fixed], marker="o",
                label="fixed quantum")
        for key, style in (("per_class", "--"), ("adaptive", ":")):
            arm = w[key]
            if not arm["saturated"]:
                ax.axhline(arm["short_p999_slowdown"], linestyle=style,
                           alpha=0.8,
                           label=f'{key} ({arm["quanta_us"]}us)')
        ax.set_xscale("log")
        ax.set_xlabel("fixed quantum (us)")
        ax.set_ylabel(f'{w["short_class"]} p999 slowdown')
        ax.set_title(f'{name} @ {w["rate_mrps"]} Mrps', fontsize=9)
        ax.legend(fontsize=8)
        ax.grid(True, alpha=0.3)

    fig.tight_layout()
    fig.savefig(output, dpi=130)
    print(f"wrote {output}")


def plot_compiler_json(path, output):
    """Render BENCH_compiler.json: per-workload TQ-vs-TQopt probe counts
    and proven bounds from the verify-guided placement optimizer."""
    with open(path) as f:
        data = json.load(f)
    rows = data["per_workload"]
    names = [r["workload"] for r in rows]

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(2, 1, figsize=(12, 8), squeeze=False)
    xs = range(len(rows))
    width = 0.38

    ax = axes[0][0]
    ax.bar([x - width / 2 for x in xs],
           [r["probes"]["tq"] for r in rows], width, label="tq")
    ax.bar([x + width / 2 for x in xs],
           [r["probes"]["tq_opt"] for r in rows], width, label="tq_opt")
    ax.set_ylabel("static probes")
    ax.set_title("probe count before/after optimize_placement", fontsize=9)
    ax.set_xticks(list(xs))
    ax.set_xticklabels(names, rotation=60, ha="right", fontsize=7)
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)

    ax2 = axes[1][0]
    ax2.bar([x - width / 2 for x in xs],
            [r["proven_bound"]["tq"] for r in rows], width, label="tq")
    ax2.bar([x + width / 2 for x in xs],
            [r["proven_bound"]["tq_opt"] for r in rows], width,
            label="tq_opt")
    ax2.set_ylabel("proven stretch bound")
    ax2.set_yscale("log")
    ax2.set_title("verifier's proven worst-case probe-free stretch",
                  fontsize=9)
    ax2.set_xticks(list(xs))
    ax2.set_xticklabels(names, rotation=60, ha="right", fontsize=7)
    ax2.legend(fontsize=8)
    ax2.grid(True, axis="y", alpha=0.3)

    fig.tight_layout()
    fig.savefig(output, dpi=130)
    print(f"wrote {output}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("input", nargs="?", help="bench output file (default stdin)")
    ap.add_argument("-o", "--output", default="bench.png", help="output PNG")
    args = ap.parse_args()

    if args.input and args.input.endswith(".json"):
        with open(args.input) as f:
            keys = json.load(f)
        if "scenarios" in keys:
            plot_scenarios_json(args.input, args.output)
        elif "workloads" in keys:
            plot_quanta_json(args.input, args.output)
        elif "per_workload" in keys:
            plot_compiler_json(args.input, args.output)
        elif "event_queue_hold" in keys:
            plot_sim_json(args.input, args.output)
        else:
            plot_dispatch_json(args.input, args.output)
        return

    text = open(args.input).readlines() if args.input else sys.stdin.readlines()
    tables = parse_tables(text)
    if not tables:
        sys.exit("no tables found in input")

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(1, len(tables),
                             figsize=(6 * len(tables), 4.5), squeeze=False)
    for ax, (title, header, rows) in zip(axes[0], tables):
        xs = [float(r[0]) for r in rows]
        for col in range(1, len(header)):
            ys, pts_x = [], []
            for x, r in zip(xs, rows):
                v = cell_value(r[col]) if col < len(r) else None
                if v is not None:
                    pts_x.append(x)
                    ys.append(v)
            if ys:
                ax.plot(pts_x, ys, marker="o", label=header[col])
        ax.set_xlabel(header[0])
        ax.set_title(title, fontsize=9)
        if any(v is not None and v > 50 for _, h, rr in tables
               for r in rr for v in map(cell_value, r[1:])):
            ax.set_yscale("log")
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(args.output, dpi=130)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
