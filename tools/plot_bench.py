#!/usr/bin/env python3
"""Plot the TSV series printed by the bench/ binaries.

The figure benches print self-describing tab-separated tables:

    # Figure 1 — ...
    rate_mrps   q0.5us  q1.0us ...
    0.50        1       1
    ...

This script turns one bench's stdout (or a saved file) into a PNG per
table, with log-scaled y axes for latency series. matplotlib is the only
dependency; the benches themselves never need it.

Usage:
    build/bench/fig01_quantum_slowdown | tools/plot_bench.py -o fig01.png
    tools/plot_bench.py bench_output_fig07.txt -o fig07.png
"""

import argparse
import sys


def parse_tables(lines):
    """Split bench output into (title, header, rows) tables."""
    tables = []
    title = ""
    header = None
    rows = []

    def flush():
        nonlocal header, rows
        if header and rows:
            tables.append((title, header, rows))
        header, rows = None, []

    for line in lines:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("##"):
                flush()
            if not tables or line.startswith("##"):
                title = line.lstrip("# ").strip()
            continue
        cells = line.split("\t")
        if len(cells) < 2:
            continue
        try:
            float(cells[0])
        except ValueError:
            flush()
            header = cells
            continue
        if header:
            rows.append(cells)
    flush()
    return tables


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("input", nargs="?", help="bench output file (default stdin)")
    ap.add_argument("-o", "--output", default="bench.png", help="output PNG")
    args = ap.parse_args()

    text = open(args.input).readlines() if args.input else sys.stdin.readlines()
    tables = parse_tables(text)
    if not tables:
        sys.exit("no tables found in input")

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(1, len(tables),
                             figsize=(6 * len(tables), 4.5), squeeze=False)
    for ax, (title, header, rows) in zip(axes[0], tables):
        xs = [float(r[0]) for r in rows]
        for col in range(1, len(header)):
            ys, pts_x = [], []
            for x, r in zip(xs, rows):
                if col < len(r) and r[col] not in ("sat", ""):
                    pts_x.append(x)
                    ys.append(float(r[col]))
            if ys:
                ax.plot(pts_x, ys, marker="o", label=header[col])
        ax.set_xlabel(header[0])
        ax.set_title(title, fontsize=9)
        if any(v > 50 for _, h, rr in tables for r in rr
               for v in [float(c) for c in r[1:] if c not in ("sat", "")]):
            ax.set_yscale("log")
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(args.output, dpi=130)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
