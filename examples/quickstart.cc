/**
 * @file
 * Quickstart: a minimal Tiny Quanta server.
 *
 * Builds a TQ runtime (dispatcher + 2 workers), serves a mixed workload
 * of short (2us) and long (2ms) spin jobs with 2us quanta, and shows
 * forced multitasking doing its job: the short requests' latency stays
 * microsecond-scale even while a 2ms job is in flight on the same
 * worker pool.
 *
 * Run: ./quickstart
 */
#include <cstdio>
#include <thread>

#include "core/tq.h"

using namespace tq;

int
main()
{
    // 1. Configure the runtime: one worker, 2us quanta, JSQ+MSQ.
    //    (One worker makes the preemption effect unambiguous: every job
    //    below competes for the same core.)
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 2.0;

    // 2. The job body. spin_for() is probed like compiler-instrumented
    //    code, so the scheduler can preempt it whenever a quantum ends.
    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        workloads::spin_for(static_cast<double>(req.payload));
        return req.payload;
    });
    rt.start();

    // 3. Submit one long job followed by a burst of short ones.
    auto make = [](uint64_t id, double ns, int cls) {
        runtime::Request r;
        r.id = id;
        r.gen_cycles = rdcycles();
        r.job_class = cls;
        r.payload = static_cast<uint64_t>(ns);
        return r;
    };
    rt.submit(make(0, 2e6, 1)); // 2 ms
    for (uint64_t i = 1; i <= 16; ++i)
        rt.submit(make(i, 2e3, 0)); // 2 us each

    // 4. Collect all responses.
    std::vector<runtime::Response> responses;
    while (responses.size() < 17) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }

    // On a dedicated-core deployment the short jobs' sojourn would be a
    // few microseconds; on a timeshared host wall-clock latency is
    // noisy, so report the robust signal: completion *order*. Under PS
    // with 2us quanta, every 2us job must finish before the 2ms job
    // that arrived first; under FCFS none would.
    Cycles long_done = 0;
    int shorts_before_long = 0;
    std::vector<Cycles> short_done;
    for (const auto &r : responses) {
        if (r.job_class == 1)
            long_done = r.done_cycles;
        else
            short_done.push_back(r.done_cycles);
    }
    for (Cycles c : short_done)
        shorts_before_long += (c < long_done);
    std::printf("2ms job submitted first; then 16 x 2us jobs.\n");
    std::printf("short jobs finishing before the long job: %d / 16\n",
                shorts_before_long);
    std::printf("=> forced multitasking preempted the long job every 2us "
                "so the shorts were never blocked behind it.\n");

    rt.stop();
    return 0;
}
