/**
 * @file
 * Example: the forced-multitasking compiler pass, end to end.
 *
 * Builds a small program in the mini-IR (a lookup loop calling a branchy
 * comparator), runs TQ's probe-placement pass and the CI baseline on it,
 * prints the instrumented IR, and executes both under the timing model
 * to compare probing overhead and yield-timing accuracy — Table 3 in
 * miniature, with the IR visible.
 *
 * Run: ./probe_compiler_demo
 */
#include <cstdio>

#include "core/tq.h"

using namespace tq;
using namespace tq::compiler;

namespace {

Module
build_demo_program()
{
    // A data-dependent search loop with a slow path, repeated many times.
    FunctionBuilder fb("lookup");
    const int entry = fb.add_block();
    const int loop = fb.add_block();
    const int slow = fb.add_block();
    const int latch = fb.add_block();
    const int exit = fb.add_block();
    fb.ops(entry, Op::IAlu, 4);
    fb.jump(entry, loop);
    fb.ops(loop, Op::Load, 2).ops(loop, Op::IAlu, 3);
    fb.branch(loop, slow, latch, 0.1);
    fb.loop_facts(loop, std::nullopt, /*has_induction_var=*/true);
    fb.ops(slow, Op::Load, 2).ops(slow, Op::IAlu, 6);
    fb.jump(slow, latch);
    fb.latch(latch, loop, exit, 200'000);
    fb.ret(exit);

    Module m;
    m.name = "lookup-demo";
    m.functions.push_back(fb.build());
    validate(m);
    return m;
}

} // namespace

int
main()
{
    const Module base = build_demo_program();
    std::printf("=== original IR ===\n%s\n",
                to_string(base.entry()).c_str());

    PassConfig pcfg;
    pcfg.bound = 200; // max probe-free instructions

    Module tq_mod = base;
    run_tq_pass(tq_mod, pcfg);
    std::printf("=== after TQ pass (bound=%d instructions) ===\n%s\n",
                pcfg.bound, to_string(tq_mod.entry()).c_str());
    std::printf("TQ inserted %d probe site(s); CI inserts one per basic "
                "block:\n",
                tq_mod.probe_count());

    Module ci_mod = base;
    run_ci_pass(ci_mod, pcfg);
    std::printf("CI probe sites: %d\n\n", ci_mod.probe_count());

    ExecConfig ecfg;
    ecfg.quantum_cycles = 2.0 * 1e3 * ecfg.cost.cycles_per_ns; // 2us
    const ExecResult tq_run = execute(tq_mod, ecfg);
    const ExecResult ci_run = execute(ci_mod, ecfg);

    std::printf("                    %12s %12s\n", "TQ", "CI");
    std::printf("probing overhead    %11.1f%% %11.1f%%\n",
                tq_run.overhead() * 100, ci_run.overhead() * 100);
    std::printf("yield MAE (ns)      %12.0f %12.0f\n",
                tq_run.yield_mae_cycles / ecfg.cost.cycles_per_ns,
                ci_run.yield_mae_cycles / ecfg.cost.cycles_per_ns);
    std::printf("yields              %12llu %12llu\n",
                static_cast<unsigned long long>(tq_run.yields),
                static_cast<unsigned long long>(ci_run.yields));
    std::printf("=> sparse physical-clock probes: less overhead, better "
                "timing (paper section 3.1).\n");
    return 0;
}
