/**
 * @file
 * Example: TPC-C style OLTP on Tiny Quanta (paper Table 1's multi-modal
 * workload).
 *
 * Each worker owns one warehouse shard (thread-local TpccEmulator).
 * Transactions range from ~6us (Payment) to ~100us-class (StockLevel),
 * so blind preemptive scheduling matters: Payment latency must not
 * depend on whether a StockLevel transaction happens to be in flight.
 * Also demonstrates PreemptGuard for a short critical section.
 *
 * Run: ./tpcc_app
 */
#include <cstdio>

#include "core/tq.h"

using namespace tq;

namespace {

workloads::TpccEmulator &
shard()
{
    // No yields while the thread_local constructs (its constructor runs
    // probed seed transactions): see paper section 6 on reentrancy.
    thread_local auto db = [] {
        PreemptGuard guard;
        return std::make_unique<workloads::TpccEmulator>(7);
    }();
    return *db;
}

} // namespace

int
main()
{
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.quantum_us = 2.0;

    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        Rng rng(req.payload);
        const auto txn = static_cast<workloads::TpccTxn>(req.job_class);
        const uint64_t result = shard().run(txn, rng);
        {
            // Commit point: a short non-preemptable section (paper
            // section 4's critical-section support).
            PreemptGuard guard;
            // ... publish commit record (elided) ...
        }
        return result;
    });
    rt.start();
    net::RuntimeServer server(rt);

    auto dist = workload_table::tpcc();
    net::LoadGenConfig lg;
    lg.rate_mrps = 0.002;
    lg.duration_sec = 1.0;
    const net::ClientStats stats = net::run_open_loop(
        server, *dist,
        [](const ServiceSample &s, uint64_t id) {
            runtime::Request req;
            req.job_class = s.job_class; // TpccTxn index
            req.payload = id;
            return req;
        },
        lg);
    rt.stop();

    std::printf("TPC-C on Tiny Quanta (%llu transactions)\n",
                static_cast<unsigned long long>(stats.completed));
    std::printf("%-12s %10s %14s %14s\n", "type", "count", "mean(us)",
                "p99.9(us)");
    for (const auto &c : stats.classes) {
        std::printf("%-12s %10llu %14.1f %14.1f\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.completed),
                    c.mean_sojourn_us, c.p999_sojourn_us);
    }
    std::printf("=> with 2us quanta, the mean latency of the short "
                "transaction types stays close to their service time even "
                "though 10-100x longer types share the workers (absolute "
                "values include OS timesharing on this host; see "
                "bench/fig08_tpcc for calibrated cluster results).\n");
    return 0;
}
