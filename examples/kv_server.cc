/**
 * @file
 * Example: a MiniKV key-value server on Tiny Quanta (the paper's
 * motivating application, section 5.1).
 *
 * Serves a GET/SCAN mix (0.5% scans, each touching thousands of
 * entries) through the TQ runtime, then through an FCFS configuration
 * of the same runtime, and prints the GET tail latency of both: the
 * classic head-of-line-blocking demonstration, on the real system.
 *
 * Run: ./kv_server [--chaos[=seed]] [trace.json]
 *
 * With a path argument, the PS run's quantum-event trace is exported as
 * Chrome trace_event JSON and the telemetry stage decomposition is
 * printed — the worked example walked through in OBSERVABILITY.md.
 *
 * With --chaos, every fault-injection hook site is armed with seeded
 * deterministic yields plus a per-completion stall, and the PS run
 * reports the backpressure counters afterwards — a quick way to watch
 * the drain/stop machinery absorb a misbehaving datapath. Requires a
 * tree configured with -DTQ_FAULT_INJECTION=ON; otherwise the flag
 * prints a note and runs normally.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/tq.h"

using namespace tq;

namespace {

constexpr uint64_t kKeys = 50'000;
constexpr size_t kScanLen = 3'000;

/** Each worker thread owns a MiniKV shard (no cross-thread mutation). */
workloads::MiniKV &
shard()
{
    // Loading happens lazily inside a probed job: suppress yields while
    // the thread_local initializes, or a preemption mid-construction
    // would let another task re-enter the initializer (the reentrancy
    // hazard of paper section 6).
    thread_local auto kv = [] {
        PreemptGuard guard;
        auto fresh = std::make_unique<workloads::MiniKV>(42, 100);
        fresh->load_sequential(kKeys);
        return fresh;
    }();
    return *kv;
}

/**
 * Burst demo: one multi-ms SCAN enters first, then a wave of GETs, all
 * on a single worker. The robust, host-independent signal is completion
 * *order*: preemptive PS lets every GET overtake the SCAN; FCFS makes
 * every GET wait behind it. (Open-loop latency numbers would mostly
 * measure OS timesharing on this single-core build host.)
 */
struct BurstResult
{
    int gets_before_scan = 0;
    int gets_total = 0;
};

/** Arm seeded chaos at every hook site; 0 disarms (plain run). */
uint64_t g_chaos_seed = 0;

void
arm_chaos()
{
    auto &inj = fault::FaultInjector::instance();
    inj.reset();
    inj.seed(g_chaos_seed);
    for (int s = 0; s < static_cast<int>(fault::Site::kCount); ++s)
        inj.yield_every(static_cast<fault::Site>(s), 16);
    // A sluggish response path on top of the yields: every completion
    // stalls before the TX push, so the ring backs up for real.
    inj.stall(fault::Site::WorkerComplete, 5.0);
}

BurstResult
serve_burst(runtime::WorkPolicy policy, const char *trace_path = nullptr)
{
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 1;
    cfg.quantum_us = 2.0;
    cfg.work = policy;

    runtime::Runtime rt(cfg, [](const runtime::Request &req) {
        uint64_t checksum = 0;
        if (req.job_class == 0) {
            std::string value;
            shard().get(req.payload % kKeys, &value);
            checksum = value.empty() ? 0 : static_cast<uint64_t>(value[0]);
        } else {
            shard().scan(req.payload % kKeys, kScanLen, &checksum);
        }
        return checksum;
    });
    if (g_chaos_seed != 0)
        arm_chaos();
    rt.start();

    constexpr int kGets = 40;
    auto make = [](uint64_t id, int cls, uint64_t payload) {
        runtime::Request r;
        r.id = id;
        r.gen_cycles = rdcycles();
        r.job_class = cls;
        r.payload = payload;
        return r;
    };
    rt.submit(make(999, 1, 0)); // the scan
    for (uint64_t i = 0; i < kGets; ++i)
        rt.submit(make(i, 0, i * 2654435761u));

    std::vector<runtime::Response> responses;
    while (responses.size() < kGets + 1) {
        rt.drain_responses(responses);
        std::this_thread::yield();
    }
    rt.stop();

    if (g_chaos_seed != 0) {
        std::printf("[chaos seed %llu] backpressure under fault load: "
                    "tx-full spins %llu, dispatch-full spins %llu, "
                    "dropped %llu, abandoned %llu\n",
                    static_cast<unsigned long long>(g_chaos_seed),
                    static_cast<unsigned long long>(rt.tx_ring_full_spins()),
                    static_cast<unsigned long long>(
                        rt.dispatch_ring_full_spins()),
                    static_cast<unsigned long long>(rt.dropped_responses()),
                    static_cast<unsigned long long>(rt.abandoned_jobs()));
        fault::FaultInjector::instance().reset();
    }

    if (trace_path != nullptr) {
        if (!telemetry::kEnabled) {
            std::printf("(telemetry compiled out: -DTQ_TELEMETRY=OFF; no "
                        "trace written)\n");
        } else {
            std::printf("\n%s",
                        rt.telemetry_snapshot().to_string().c_str());
            std::vector<telemetry::TraceEvent> events;
            rt.drain_trace(events);
            std::ofstream out(trace_path);
            telemetry::write_chrome_trace(out, events);
            std::printf("wrote %zu trace events to %s (load in "
                        "chrome://tracing or ui.perfetto.dev)\n\n",
                        events.size(), trace_path);
        }
    }

    Cycles scan_done = 0;
    for (const auto &r : responses)
        if (r.id == 999)
            scan_done = r.done_cycles;
    BurstResult result;
    result.gets_total = kGets;
    for (const auto &r : responses)
        if (r.id != 999 && r.done_cycles < scan_done)
            ++result.gets_before_scan;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("MiniKV on Tiny Quanta: %llu keys; one %zu-entry SCAN "
                "submitted first, then 40 GETs, one worker.\n",
                static_cast<unsigned long long>(kKeys), kScanLen);

    const char *trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--chaos", 7) == 0) {
            g_chaos_seed =
                argv[i][7] == '=' ? std::strtoull(argv[i] + 8, nullptr, 10)
                                  : 1;
            if (g_chaos_seed == 0)
                g_chaos_seed = 1;
        } else {
            trace_path = argv[i];
        }
    }
    if (g_chaos_seed != 0 && !fault::kEnabled) {
        std::printf("(--chaos: fault hooks compiled out; configure with "
                    "-DTQ_FAULT_INJECTION=ON. Running without faults.)\n");
        g_chaos_seed = 0;
    }

    const BurstResult ps =
        serve_burst(runtime::WorkPolicy::ProcessorSharing, trace_path);
    const BurstResult fcfs = serve_burst(runtime::WorkPolicy::Fcfs);

    std::printf("TQ (PS, 2us quanta): %d / %d GETs completed before the "
                "SCAN\n",
                ps.gets_before_scan, ps.gets_total);
    std::printf("FCFS baseline:       %d / %d GETs completed before the "
                "SCAN\n",
                fcfs.gets_before_scan, fcfs.gets_total);
    std::printf("=> forced multitasking preempts the SCAN inside MiniKV's "
                "own probe sites, so point lookups never wait behind "
                "range scans.\n");
    return 0;
}
